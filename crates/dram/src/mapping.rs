//! DDR controller address interleaving.
//!
//! The memory scraping attack itself only needs byte-addressable physical
//! memory, but the *defenses* discussed in the paper's related-work section
//! (RowClone bulk zeroing, RowReset bank initialization) operate on DRAM rows
//! and banks.  [`DdrMapping`] converts between a flat physical address inside
//! the DRAM window and the `(rank, bank group, bank, row, column)` coordinates
//! those mechanisms work on, using the row-interleaved mapping commonly used
//! by the Zynq UltraScale+ DDR controller:
//!
//! ```text
//! address bits (low → high): column | bank group | bank | row | rank
//! ```
//!
//! Because the column bits are the *low* bits, every naturally aligned
//! `row_bytes`-sized block of the window (a **bank stripe**) lives entirely
//! inside one bank, and consecutive stripes rotate through the bank groups.
//! [`DdrMapping::split_at_bank_boundaries`] decomposes an arbitrary byte
//! range into those single-bank chunks — the partition the sharded
//! [`Dram`](crate::Dram) store and its bank-parallel scrub/scrape paths are
//! built on.
//!
//! Every entry point rejects out-of-window addresses with the typed
//! [`DramError::OutsideWindow`] error (decompose and the bulk span/splitting
//! paths used to disagree: decompose returned `None` while `bank_addresses`
//! happily produced spans past the window end that callers had to filter).

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::config::{DdrGeometry, DramConfig};
use crate::error::DramError;

/// Decomposed DRAM coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DdrCoordinates {
    /// Rank index.
    pub rank: u64,
    /// Bank group index.
    pub bank_group: u64,
    /// Bank index within the bank group.
    pub bank: u64,
    /// Row index within the bank.
    pub row: u64,
    /// Byte column within the row.
    pub column: u64,
}

impl DdrCoordinates {
    /// Returns a flat identifier of the (rank, bank group, bank) triple,
    /// useful for grouping rows by bank.
    pub fn bank_id(&self, geometry: &DdrGeometry) -> u64 {
        (self.rank << (geometry.bank_group_bits + geometry.bank_bits))
            | (self.bank_group << geometry.bank_bits)
            | self.bank
    }

    /// Returns a flat identifier of the (bank, row) pair, useful for grouping
    /// addresses by DRAM row.
    pub fn row_id(&self, geometry: &DdrGeometry) -> u64 {
        (self.bank_id(geometry) << geometry.row_bits) | self.row
    }
}

/// One single-bank chunk of a byte range split at bank-stripe boundaries.
///
/// Produced by [`DdrMapping::split_at_bank_boundaries`]; every byte of
/// `[addr, addr + len)` belongs to the bank identified by `bank`
/// (a [`DdrCoordinates::bank_id`] value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankChunk {
    /// Flat bank identifier (rank, bank group, bank).
    pub bank: u64,
    /// Global stripe index of the chunk (window offset / stripe bytes).
    pub stripe: u64,
    /// First address of the chunk.
    pub addr: PhysAddr,
    /// Chunk length in bytes (never crosses a stripe boundary).
    pub len: u64,
}

/// Translator between window-relative physical addresses and DDR coordinates.
///
/// # Example
///
/// ```
/// use zynq_dram::{DdrMapping, DramConfig};
///
/// let cfg = DramConfig::zcu104();
/// let mapping = DdrMapping::new(cfg);
/// let addr = cfg.base() + 0x1_2345;
/// let coords = mapping.decompose(addr).expect("inside window");
/// assert_eq!(mapping.compose(coords), addr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdrMapping {
    config: DramConfig,
}

impl DdrMapping {
    /// Creates a mapping for the given DRAM configuration.
    pub fn new(config: DramConfig) -> Self {
        DdrMapping { config }
    }

    /// The configuration this mapping was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Number of distinct banks addressed by the geometry
    /// (ranks × bank groups × banks per group).
    pub fn bank_count(&self) -> u64 {
        self.config.geometry().bank_count()
    }

    /// Bytes per bank stripe: the longest naturally aligned block that is
    /// guaranteed to live inside a single bank (one DRAM row).
    pub fn stripe_bytes(&self) -> u64 {
        self.config.geometry().row_bytes()
    }

    /// The bank holding a given global stripe (window offset / stripe bytes).
    ///
    /// Delegates to [`DdrGeometry::bank_of_stripe`] — a total function, so
    /// the store can route every stripe to exactly one bank shard without an
    /// in-window check on the hot path.  For in-window addresses it agrees
    /// with [`DdrCoordinates::bank_id`] of any address in the stripe.
    pub fn bank_of_stripe(&self, stripe: u64) -> u64 {
        self.config.geometry().bank_of_stripe(stripe)
    }

    /// The bank containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutsideWindow`] if `addr` is outside the window.
    pub fn bank_of(&self, addr: PhysAddr) -> Result<u64, DramError> {
        if !self.config.contains(addr) {
            return Err(DramError::OutsideWindow { addr });
        }
        Ok(self.bank_of_stripe(addr.offset_from(self.config.base()) / self.stripe_bytes()))
    }

    /// Splits the byte range `[addr, addr + len)` into single-bank chunks at
    /// bank-stripe boundaries, in address order.
    ///
    /// The chunks form a partition: concatenating them reproduces the range
    /// exactly, and each chunk lies wholly inside the bank it names.  This is
    /// the decomposition the sharded store routes requests through and the
    /// parallel scrub/scrape paths fan out over.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutsideWindow`] naming the **offending address**
    /// if any byte of the range falls outside the window — the range start
    /// when the start itself is outside, otherwise the range's last byte (the
    /// one that escaped past the window end).  A length that overflows the
    /// address space is [`DramError::LengthOverflow`], and a zero-length
    /// range is [`DramError::EmptyRange`].
    pub fn split_at_bank_boundaries(
        &self,
        addr: PhysAddr,
        len: u64,
    ) -> Result<Vec<BankChunk>, DramError> {
        if len == 0 {
            return Err(DramError::EmptyRange { addr });
        }
        let last = addr
            .checked_add(len - 1)
            .ok_or(DramError::LengthOverflow { addr, len })?;
        if !self.config.contains(addr) {
            return Err(DramError::OutsideWindow { addr });
        }
        if !self.config.contains(last) {
            return Err(DramError::OutsideWindow { addr: last });
        }
        let sb = self.stripe_bytes();
        let base = self.config.base();
        // The capacity is a hint: fall back to an empty hint rather than
        // truncate if the chunk-count estimate ever exceeds `usize`.
        let mut chunks = Vec::with_capacity(usize::try_from(len / sb + 2).unwrap_or(0));
        let mut cursor = 0u64;
        while cursor < len {
            let rel = (addr + cursor).offset_from(base);
            let stripe = rel / sb;
            let offset = rel % sb;
            let chunk = (sb - offset).min(len - cursor);
            chunks.push(BankChunk {
                bank: self.bank_of_stripe(stripe),
                stripe,
                addr: addr + cursor,
                len: chunk,
            });
            cursor += chunk;
        }
        Ok(chunks)
    }

    /// Decomposes a physical address into DDR coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutsideWindow`] if the address is outside the
    /// DRAM window.
    pub fn decompose(&self, addr: PhysAddr) -> Result<DdrCoordinates, DramError> {
        if !self.config.contains(addr) {
            return Err(DramError::OutsideWindow { addr });
        }
        let g = self.config.geometry();
        let mut rel = addr.offset_from(self.config.base());

        let column = rel & ((1 << g.column_bits) - 1);
        rel >>= g.column_bits;
        let bank_group = rel & ((1 << g.bank_group_bits) - 1);
        rel >>= g.bank_group_bits;
        let bank = rel & ((1 << g.bank_bits) - 1);
        rel >>= g.bank_bits;
        let row = rel & ((1 << g.row_bits) - 1);
        rel >>= g.row_bits;
        let rank = rel & ((1 << g.rank_bits) - 1);

        Ok(DdrCoordinates {
            rank,
            bank_group,
            bank,
            row,
            column,
        })
    }

    /// Composes DDR coordinates back into a physical address.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate exceeds the geometry's bit width.
    pub fn compose(&self, coords: DdrCoordinates) -> PhysAddr {
        let g = self.config.geometry();
        assert!(coords.column < (1 << g.column_bits), "column out of range");
        assert!(
            coords.bank_group < (1 << g.bank_group_bits),
            "bank group out of range"
        );
        assert!(coords.bank < (1 << g.bank_bits), "bank out of range");
        assert!(coords.row < (1 << g.row_bits), "row out of range");
        assert!(coords.rank < (1 << g.rank_bits), "rank out of range");

        let mut rel = coords.rank;
        rel = (rel << g.row_bits) | coords.row;
        rel = (rel << g.bank_bits) | coords.bank;
        rel = (rel << g.bank_group_bits) | coords.bank_group;
        rel = (rel << g.column_bits) | coords.column;
        self.config.base() + rel
    }

    /// Returns the inclusive start and exclusive end of the DRAM row
    /// containing `addr`, clipped to the window end (tiny test windows can be
    /// smaller than one full row).
    ///
    /// This is the span a RowClone-style bulk zero would clear.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutsideWindow`] if `addr` is outside the window.
    pub fn row_span(&self, addr: PhysAddr) -> Result<(PhysAddr, PhysAddr), DramError> {
        let g = self.config.geometry();
        let coords = self.decompose(addr)?;
        let start = self.compose(DdrCoordinates {
            column: 0,
            ..coords
        });
        let end = (start + g.row_bytes()).min(self.config.end());
        Ok((start, end))
    }

    /// Returns the inclusive start and exclusive end of the contiguous span
    /// mapped to the bank containing `addr`.
    ///
    /// Because the row bits sit above the bank bits in this interleaving, a
    /// single bank does **not** form one contiguous span; this method returns
    /// the span of the *row-group stripe* the address falls into (one row's
    /// worth of bytes).  Use [`DdrMapping::bank_addresses`] to enumerate a
    /// whole bank.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutsideWindow`] if `addr` is outside the window.
    pub fn bank_stripe_span(&self, addr: PhysAddr) -> Result<(PhysAddr, PhysAddr), DramError> {
        self.row_span(addr)
    }

    /// Iterates over the span of every row belonging to the bank that
    /// contains `addr`, **restricted to the configured window**: rows that a
    /// small window does not reach are omitted, and the final row is clipped
    /// to the window end, so callers can scrub every returned span without
    /// re-checking bounds.
    ///
    /// This is the set of spans a RowReset-style bank initialization clears.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutsideWindow`] if `addr` is outside the window
    /// (the same rejection [`DdrMapping::decompose`] applies — the two paths
    /// used to disagree, with the bulk path emitting out-of-window spans).
    pub fn bank_addresses(&self, addr: PhysAddr) -> Result<Vec<(PhysAddr, PhysAddr)>, DramError> {
        let g = self.config.geometry();
        let coords = self.decompose(addr)?;
        let rows = 1u64 << g.row_bits;
        let end = self.config.end();
        let mut spans = Vec::new();
        for row in 0..rows {
            let start = self.compose(DdrCoordinates {
                column: 0,
                row,
                ..coords
            });
            if start >= end {
                continue;
            }
            spans.push((start, (start + g.row_bytes()).min(end)));
        }
        Ok(spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;
    use proptest::prelude::*;

    fn mapping() -> DdrMapping {
        DdrMapping::new(DramConfig::zcu104())
    }

    #[test]
    fn full_window_split_survives_the_capacity_estimate_boundary() {
        // Regression for the checked capacity hint: the largest legal range
        // (the whole window) must plan without wrapping, and the plan must
        // partition the range exactly.
        let m = DdrMapping::new(DramConfig::tiny_for_tests());
        let len = m.config().capacity();
        let chunks = m.split_at_bank_boundaries(m.config().base(), len).unwrap();
        let expected = len / m.stripe_bytes();
        assert_eq!(chunks.len() as u64, expected);
        assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), len);
        assert_eq!(chunks.first().unwrap().addr, m.config().base());
    }

    #[test]
    fn decompose_base_is_all_zero() {
        let m = mapping();
        let c = m.decompose(m.config().base()).unwrap();
        assert_eq!(
            c,
            DdrCoordinates {
                rank: 0,
                bank_group: 0,
                bank: 0,
                row: 0,
                column: 0
            }
        );
    }

    #[test]
    fn decompose_outside_window_is_a_typed_error() {
        let m = mapping();
        assert!(matches!(
            m.decompose(PhysAddr::new(0)),
            Err(DramError::OutsideWindow { .. })
        ));
        assert!(matches!(
            m.decompose(m.config().end()),
            Err(DramError::OutsideWindow { .. })
        ));
    }

    #[test]
    fn every_entry_point_rejects_the_window_end_identically() {
        // The satellite fix: decompose and the bulk paths must agree on the
        // window edge.  The last in-window byte succeeds everywhere; the
        // one-past-the-end address fails everywhere with the same error.
        let m = mapping();
        let last = m.config().end() - 1;
        assert!(m.decompose(last).is_ok());
        assert!(m.row_span(last).is_ok());
        assert!(m.bank_stripe_span(last).is_ok());
        assert!(m.bank_addresses(last).is_ok());
        assert!(m.bank_of(last).is_ok());
        assert!(m.split_at_bank_boundaries(last, 1).is_ok());

        let past = m.config().end();
        assert!(matches!(
            m.decompose(past),
            Err(DramError::OutsideWindow { addr }) if addr == past
        ));
        assert!(matches!(
            m.row_span(past),
            Err(DramError::OutsideWindow { .. })
        ));
        assert!(matches!(
            m.bank_stripe_span(past),
            Err(DramError::OutsideWindow { .. })
        ));
        assert!(matches!(
            m.bank_addresses(past),
            Err(DramError::OutsideWindow { .. })
        ));
        assert!(matches!(
            m.bank_of(past),
            Err(DramError::OutsideWindow { .. })
        ));
        // A range whose tail leaves the window is rejected as a whole.
        assert!(matches!(
            m.split_at_bank_boundaries(last, 2),
            Err(DramError::OutsideWindow { .. })
        ));
        // A range whose length overflows the address space is rejected too.
        assert!(m.split_at_bank_boundaries(last, u64::MAX).is_err());
        assert!(matches!(
            m.split_at_bank_boundaries(last, 0),
            Err(DramError::EmptyRange { .. })
        ));
    }

    #[test]
    fn split_reports_the_offending_address_not_just_the_range_start() {
        // Satellite fix: a range whose *end* escapes the window used to blame
        // the (perfectly valid) range start.  The error must name the byte
        // that actually escaped.
        let m = mapping();
        let end = m.config().end();
        let last = end - 1;

        // Start in-window, end one byte past: the offender is the escaped
        // last byte, not the start.
        assert!(matches!(
            m.split_at_bank_boundaries(last, 2),
            Err(DramError::OutsideWindow { addr }) if addr == end
        ));
        // Deeper escape: still the range's last byte.
        assert!(matches!(
            m.split_at_bank_boundaries(end - 16, 64),
            Err(DramError::OutsideWindow { addr }) if addr == end - 16 + 63
        ));
        // Start already outside: the start is the offender.
        assert!(matches!(
            m.split_at_bank_boundaries(end, 4),
            Err(DramError::OutsideWindow { addr }) if addr == end
        ));
        let below = PhysAddr::new(0x1000);
        assert!(matches!(
            m.split_at_bank_boundaries(below, 4),
            Err(DramError::OutsideWindow { addr }) if addr == below
        ));
        // Exact window boundary: the final in-window byte splits fine, and a
        // range ending exactly at the window end is accepted in full.
        assert!(m.split_at_bank_boundaries(last, 1).is_ok());
        let chunks = m.split_at_bank_boundaries(end - 4096, 4096).unwrap();
        assert_eq!(chunks.iter().map(|c| c.len).sum::<u64>(), 4096);
        // Length overflow is its own typed error, preserving the length.
        assert!(matches!(
            m.split_at_bank_boundaries(last, u64::MAX),
            Err(DramError::LengthOverflow { len: u64::MAX, .. })
        ));
    }

    #[test]
    fn row_and_bank_spans_are_clipped_to_the_window() {
        // A window smaller than one bank: every span the mapping hands out
        // must already be scrubable without a bounds re-check.
        let cfg = DramConfig::tiny_for_tests();
        let m = DdrMapping::new(cfg);
        let spans = m.bank_addresses(cfg.base()).unwrap();
        assert!(!spans.is_empty());
        for (start, end) in &spans {
            assert!(*start < *end, "spans are non-empty");
            assert!(cfg.contains(*start));
            assert!(cfg.contains(*end - 1));
        }
        let (rs, re) = m.row_span(cfg.end() - 1).unwrap();
        assert!(cfg.contains(rs) && re <= cfg.end());
    }

    #[test]
    fn compose_decompose_roundtrip_on_fixed_points() {
        let m = mapping();
        for offset in [0u64, 1, 1023, 1024, 4096, 0x1_2345, 0x7fff_ffff] {
            let addr = m.config().base() + offset;
            let coords = m.decompose(addr).unwrap();
            assert_eq!(m.compose(coords), addr, "offset {offset:#x}");
        }
    }

    #[test]
    fn row_span_contains_address_and_has_row_size() {
        let m = mapping();
        let addr = m.config().base() + 0x1_2345;
        let (start, end) = m.row_span(addr).unwrap();
        assert!(start <= addr && addr < end);
        assert_eq!(end.offset_from(start), m.config().geometry().row_bytes());
    }

    #[test]
    fn bank_addresses_enumerates_every_row_once() {
        let cfg = DramConfig::custom(
            PhysAddr::new(0x6_0000_0000),
            1 << 20,
            DdrGeometry {
                column_bits: 6,
                bank_bits: 1,
                bank_group_bits: 1,
                row_bits: 4,
                rank_bits: 0,
            },
        );
        let m = DdrMapping::new(cfg);
        let addr = cfg.base() + 5;
        let spans = m.bank_addresses(addr).unwrap();
        assert_eq!(spans.len(), 16);
        let g = cfg.geometry();
        let bank = m.decompose(addr).unwrap().bank_id(&g);
        for (start, end) in &spans {
            assert_eq!(end.offset_from(*start), g.row_bytes());
            assert_eq!(m.decompose(*start).unwrap().bank_id(&g), bank);
        }
        // All spans are distinct.
        let mut starts: Vec<_> = spans.iter().map(|(s, _)| s.as_u64()).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 16);
    }

    #[test]
    fn bank_and_row_ids_are_stable() {
        let m = mapping();
        let g = m.config().geometry();
        let a = m.config().base() + 10;
        let b = m.config().base() + 20;
        let ca = m.decompose(a).unwrap();
        let cb = m.decompose(b).unwrap();
        // Same row (both in column range of row 0, bank 0).
        assert_eq!(ca.row_id(&g), cb.row_id(&g));
        assert_eq!(ca.bank_id(&g), cb.bank_id(&g));
    }

    #[test]
    fn bank_count_and_stripe_bytes_follow_the_geometry() {
        let m = mapping();
        let g = m.config().geometry();
        assert_eq!(
            m.bank_count(),
            1 << (g.bank_bits + g.bank_group_bits + g.rank_bits)
        );
        assert_eq!(m.stripe_bytes(), g.row_bytes());
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn compose_rejects_out_of_range_column() {
        let m = mapping();
        let mut c = m.decompose(m.config().base()).unwrap();
        c.column = u64::MAX;
        let _ = m.compose(c);
    }

    /// Every board configuration a campaign can put cells on — the geometry
    /// properties below must hold on all of them, not just the ZCU104.
    fn all_board_configs() -> Vec<DramConfig> {
        vec![
            DramConfig::zcu104(),
            DramConfig::zcu102(),
            DramConfig::tiny_for_tests(),
            // A 64 MiB window whose geometry covers it exactly (26 bits).
            DramConfig::custom(
                PhysAddr::new(0x6_0000_0000),
                64 * 1024 * 1024,
                DdrGeometry {
                    column_bits: 8,
                    bank_bits: 2,
                    bank_group_bits: 2,
                    row_bits: 13,
                    rank_bits: 1,
                },
            ),
            // Stripes as large as a page, single rank, few banks.
            DramConfig::custom(
                PhysAddr::new(0x6_0000_0000),
                8 * 1024 * 1024,
                DdrGeometry {
                    column_bits: 12,
                    bank_bits: 1,
                    bank_group_bits: 1,
                    row_bits: 9,
                    rank_bits: 0,
                },
            ),
        ]
    }

    proptest! {
        #[test]
        fn prop_decompose_compose_roundtrip_on_all_boards(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let addr = cfg.base() + raw % cfg.capacity();
                let coords = m.decompose(addr).unwrap();
                prop_assert_eq!(m.compose(coords), addr, "config {:?}", cfg.board());
            }
        }

        #[test]
        fn prop_coordinates_within_geometry_on_all_boards(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let g = cfg.geometry();
                let coords = m.decompose(cfg.base() + raw % cfg.capacity()).unwrap();
                prop_assert!(coords.column < (1 << g.column_bits));
                prop_assert!(coords.bank < (1 << g.bank_bits));
                prop_assert!(coords.bank_group < (1 << g.bank_group_bits));
                prop_assert!(coords.row < (1 << g.row_bits));
                prop_assert!(coords.rank < (1 << g.rank_bits));
            }
        }

        /// Bank decomposition is a partition: every in-window address maps to
        /// exactly one bank, and that bank agrees between the stripe-level
        /// routing function and the full coordinate decomposition.
        #[test]
        fn prop_every_address_maps_to_exactly_one_bank(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let g = cfg.geometry();
                let addr = cfg.base() + raw % cfg.capacity();
                let via_coords = m.decompose(addr).unwrap().bank_id(&g);
                let via_stripe =
                    m.bank_of_stripe(addr.offset_from(cfg.base()) / m.stripe_bytes());
                prop_assert_eq!(via_coords, via_stripe, "config {:?}", cfg.board());
                prop_assert_eq!(m.bank_of(addr).unwrap(), via_coords);
                prop_assert!(via_coords < m.bank_count());
            }
        }

        /// Splitting a range at bank boundaries re-concatenates losslessly:
        /// chunks are contiguous, cover the range exactly, stay inside one
        /// bank each, and every byte lands in exactly one chunk — including
        /// ranges that straddle bank-group and rank boundaries.
        #[test]
        fn prop_bank_split_is_a_lossless_partition(raw in any::<u64>(), span in 1u64..(64 * 1024)) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let g = cfg.geometry();
                let len = span.min(cfg.capacity());
                let addr = cfg.base() + raw % (cfg.capacity() - len + 1);
                let chunks = m.split_at_bank_boundaries(addr, len).unwrap();

                // Contiguous, exact cover.
                let mut cursor = addr;
                let mut total = 0u64;
                for chunk in &chunks {
                    prop_assert_eq!(chunk.addr, cursor, "config {:?}", cfg.board());
                    prop_assert!(chunk.len > 0);
                    prop_assert!(chunk.len <= m.stripe_bytes());
                    // The whole chunk shares one bank id, and it is the bank
                    // the coordinate decomposition assigns.
                    let first = m.decompose(chunk.addr).unwrap().bank_id(&g);
                    let last = m.decompose(chunk.addr + chunk.len - 1).unwrap().bank_id(&g);
                    prop_assert_eq!(first, chunk.bank);
                    prop_assert_eq!(last, chunk.bank);
                    cursor += chunk.len;
                    total += chunk.len;
                }
                prop_assert_eq!(total, len);
                prop_assert_eq!(cursor, addr + len);
            }
        }

        /// A range deliberately straddling the highest interleaving boundary
        /// (rank, when present, else the top row) still partitions cleanly
        /// and lands in more than one bank when stripes alternate.
        #[test]
        fn prop_split_straddles_bank_group_and_rank_boundaries(span in 2u64..8192) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let sb = m.stripe_bytes();
                // Centre the range on a stripe boundary so it always crosses
                // at least one bank-group rotation.
                let len = span.min(cfg.capacity() / 2);
                let boundary = cfg.base() + (cfg.capacity() / 2);
                let addr = boundary - (len / 2).min(boundary.offset_from(cfg.base()));
                let chunks = m.split_at_bank_boundaries(addr, len).unwrap();
                let total: u64 = chunks.iter().map(|c| c.len).sum();
                prop_assert_eq!(total, len);
                if len > sb {
                    // More than one stripe: the bank rotation must show up.
                    let mut banks: Vec<u64> = chunks.iter().map(|c| c.bank).collect();
                    banks.dedup();
                    prop_assert!(banks.len() > 1, "config {:?}", cfg.board());
                }
            }
        }

        #[test]
        fn prop_same_row_shares_row_id(offset in 0u64..(2u64*1024*1024*1024 - 1024), delta in 0u64..1024) {
            let m = mapping();
            let g = m.config().geometry();
            let a = m.config().base() + (offset / 1024) * 1024;
            let b = a + delta;
            let ca = m.decompose(a).unwrap();
            let cb = m.decompose(b).unwrap();
            prop_assert_eq!(ca.row_id(&g), cb.row_id(&g));
        }

        #[test]
        fn prop_row_span_contains_address_on_all_boards(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let addr = cfg.base() + raw % cfg.capacity();
                let (start, end) = m.row_span(addr).unwrap();
                prop_assert!(start <= addr && addr < end);
                prop_assert!(end.offset_from(start) <= cfg.geometry().row_bytes());
                // Every byte of the span shares the address's row identity.
                let g = cfg.geometry();
                let row = m.decompose(addr).unwrap().row_id(&g);
                prop_assert_eq!(m.decompose(start).unwrap().row_id(&g), row);
                prop_assert_eq!(m.decompose(end - 1).unwrap().row_id(&g), row);
            }
        }

        #[test]
        fn prop_outside_window_never_decomposes(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let below = PhysAddr::new(raw % cfg.base().as_u64());
                prop_assert!(m.decompose(below).is_err());
                if let Some(above) = cfg.end().checked_add(raw % (1u64 << 32)) {
                    prop_assert!(m.decompose(above).is_err());
                }
            }
        }

        /// Stripes never cross page boundaries mid-frame in a way that could
        /// split a frame across more banks than stripes: each PAGE_SIZE frame
        /// decomposes into contiguous single-bank chunks of stripe size.
        #[test]
        fn prop_frame_splits_into_stripe_sized_bank_chunks(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let frames = cfg.capacity() / PAGE_SIZE;
                let frame_base = cfg.base() + (raw % frames) * PAGE_SIZE;
                let chunks = m.split_at_bank_boundaries(frame_base, PAGE_SIZE).unwrap();
                let expected = (PAGE_SIZE / m.stripe_bytes()).max(1);
                prop_assert_eq!(chunks.len() as u64, expected);
            }
        }

        /// The arena addressing the bank shards use is pinned to the DDR
        /// mapping: every in-window address lands in exactly one bank slab
        /// at exactly one offset.  The (bank, ordinal) pair roundtrips to
        /// the stripe the mapping routes the address to, same-bank ordinals
        /// are dense (no slab byte is shared or skipped), and the bank
        /// agrees with the coordinate-level decomposition.
        #[test]
        fn prop_every_address_lands_in_exactly_one_arena_slot(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let g = cfg.geometry();
                let sb = m.stripe_bytes();
                let addr = cfg.base() + raw % cfg.capacity();
                let stripe = addr.offset_from(cfg.base()) / sb;
                let bank = g.bank_of_stripe(stripe);
                let ordinal = g.ordinal_of_stripe(stripe);
                prop_assert_eq!(bank, m.bank_of(addr).unwrap(), "config {:?}", cfg.board());
                prop_assert_eq!(g.stripe_of_ordinal(bank, ordinal), stripe);
                // Ordinals are dense per bank: the next ordinal names the
                // next stripe of the same bank, and no stripe in between
                // belongs to this bank.
                let next = g.stripe_of_ordinal(bank, ordinal + 1);
                prop_assert!(next > stripe);
                prop_assert_eq!(g.bank_of_stripe(next), bank);
                prop_assert_eq!(g.ordinal_of_stripe(next), ordinal + 1);
                if next - stripe <= 256 {
                    for between in (stripe + 1)..next {
                        prop_assert!(g.bank_of_stripe(between) != bank);
                    }
                }
            }
        }

        /// Bank-chunk splits re-concatenate losslessly into arena terms:
        /// every chunk occupies one contiguous slab-offset range of its
        /// bank's arena, and across the whole split each byte of the range
        /// claims exactly one (bank, slab offset) slot.
        #[test]
        fn prop_bank_chunks_map_to_disjoint_arena_ranges(raw in any::<u64>(), span in 1u64..(64 * 1024)) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let g = cfg.geometry();
                let sb = m.stripe_bytes();
                let len = span.min(cfg.capacity());
                let addr = cfg.base() + raw % (cfg.capacity() - len + 1);
                let chunks = m.split_at_bank_boundaries(addr, len).unwrap();
                // Per bank: the covered slab ranges, as (start, end) offsets.
                let mut ranges: std::collections::HashMap<u64, Vec<(u64, u64)>> =
                    std::collections::HashMap::new();
                let mut covered = 0u64;
                for chunk in &chunks {
                    let rel = chunk.addr.offset_from(cfg.base());
                    prop_assert_eq!(rel / sb, chunk.stripe);
                    prop_assert_eq!(g.bank_of_stripe(chunk.stripe), chunk.bank);
                    // Within a stripe, slab offsets advance densely with the
                    // address, so the chunk is one contiguous slab range.
                    let slab_start = g.ordinal_of_stripe(chunk.stripe) * sb + rel % sb;
                    ranges
                        .entry(chunk.bank)
                        .or_default()
                        .push((slab_start, slab_start + chunk.len));
                    covered += chunk.len;
                }
                prop_assert_eq!(covered, len, "chunks cover the range exactly");
                for (bank, mut bank_ranges) in ranges {
                    bank_ranges.sort_unstable();
                    for pair in bank_ranges.windows(2) {
                        prop_assert!(
                            pair[0].1 <= pair[1].0,
                            "bank {} slab ranges overlap: {:?}",
                            bank,
                            pair
                        );
                    }
                }
            }
        }
    }
}
