//! DDR controller address interleaving.
//!
//! The memory scraping attack itself only needs byte-addressable physical
//! memory, but the *defenses* discussed in the paper's related-work section
//! (RowClone bulk zeroing, RowReset bank initialization) operate on DRAM rows
//! and banks.  [`DdrMapping`] converts between a flat physical address inside
//! the DRAM window and the `(rank, bank group, bank, row, column)` coordinates
//! those mechanisms work on, using the row-interleaved mapping commonly used
//! by the Zynq UltraScale+ DDR controller:
//!
//! ```text
//! address bits (low → high): column | bank group | bank | row | rank
//! ```

use serde::{Deserialize, Serialize};

use crate::addr::PhysAddr;
use crate::config::{DdrGeometry, DramConfig};

/// Decomposed DRAM coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DdrCoordinates {
    /// Rank index.
    pub rank: u64,
    /// Bank group index.
    pub bank_group: u64,
    /// Bank index within the bank group.
    pub bank: u64,
    /// Row index within the bank.
    pub row: u64,
    /// Byte column within the row.
    pub column: u64,
}

impl DdrCoordinates {
    /// Returns a flat identifier of the (rank, bank group, bank) triple,
    /// useful for grouping rows by bank.
    pub fn bank_id(&self, geometry: &DdrGeometry) -> u64 {
        (self.rank << (geometry.bank_group_bits + geometry.bank_bits))
            | (self.bank_group << geometry.bank_bits)
            | self.bank
    }

    /// Returns a flat identifier of the (bank, row) pair, useful for grouping
    /// addresses by DRAM row.
    pub fn row_id(&self, geometry: &DdrGeometry) -> u64 {
        (self.bank_id(geometry) << geometry.row_bits) | self.row
    }
}

/// Translator between window-relative physical addresses and DDR coordinates.
///
/// # Example
///
/// ```
/// use zynq_dram::{DdrMapping, DramConfig};
///
/// let cfg = DramConfig::zcu104();
/// let mapping = DdrMapping::new(cfg);
/// let addr = cfg.base() + 0x1_2345;
/// let coords = mapping.decompose(addr).expect("inside window");
/// assert_eq!(mapping.compose(coords), addr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdrMapping {
    config: DramConfig,
}

impl DdrMapping {
    /// Creates a mapping for the given DRAM configuration.
    pub fn new(config: DramConfig) -> Self {
        DdrMapping { config }
    }

    /// The configuration this mapping was built from.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Decomposes a physical address into DDR coordinates.
    ///
    /// Returns `None` if the address is outside the DRAM window.
    pub fn decompose(&self, addr: PhysAddr) -> Option<DdrCoordinates> {
        if !self.config.contains(addr) {
            return None;
        }
        let g = self.config.geometry();
        let mut rel = addr.offset_from(self.config.base());

        let column = rel & ((1 << g.column_bits) - 1);
        rel >>= g.column_bits;
        let bank_group = rel & ((1 << g.bank_group_bits) - 1);
        rel >>= g.bank_group_bits;
        let bank = rel & ((1 << g.bank_bits) - 1);
        rel >>= g.bank_bits;
        let row = rel & ((1 << g.row_bits) - 1);
        rel >>= g.row_bits;
        let rank = rel & ((1 << g.rank_bits) - 1);

        Some(DdrCoordinates {
            rank,
            bank_group,
            bank,
            row,
            column,
        })
    }

    /// Composes DDR coordinates back into a physical address.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate exceeds the geometry's bit width.
    pub fn compose(&self, coords: DdrCoordinates) -> PhysAddr {
        let g = self.config.geometry();
        assert!(coords.column < (1 << g.column_bits), "column out of range");
        assert!(
            coords.bank_group < (1 << g.bank_group_bits),
            "bank group out of range"
        );
        assert!(coords.bank < (1 << g.bank_bits), "bank out of range");
        assert!(coords.row < (1 << g.row_bits), "row out of range");
        assert!(coords.rank < (1 << g.rank_bits), "rank out of range");

        let mut rel = coords.rank;
        rel = (rel << g.row_bits) | coords.row;
        rel = (rel << g.bank_bits) | coords.bank;
        rel = (rel << g.bank_group_bits) | coords.bank_group;
        rel = (rel << g.column_bits) | coords.column;
        self.config.base() + rel
    }

    /// Returns the inclusive start and exclusive end of the DRAM row
    /// containing `addr`, or `None` if `addr` is outside the window.
    ///
    /// This is the span a RowClone-style bulk zero would clear.
    pub fn row_span(&self, addr: PhysAddr) -> Option<(PhysAddr, PhysAddr)> {
        let g = self.config.geometry();
        let coords = self.decompose(addr)?;
        let start = self.compose(DdrCoordinates {
            column: 0,
            ..coords
        });
        Some((start, start + g.row_bytes()))
    }

    /// Returns the inclusive start and exclusive end of the contiguous span
    /// mapped to the bank containing `addr`.
    ///
    /// Because the row bits sit above the bank bits in this interleaving, a
    /// single bank does **not** form one contiguous span; this method returns
    /// the span of the *row-group stripe* the address falls into (one row's
    /// worth of bytes).  Use [`DdrMapping::bank_addresses`] to enumerate a
    /// whole bank.
    pub fn bank_stripe_span(&self, addr: PhysAddr) -> Option<(PhysAddr, PhysAddr)> {
        self.row_span(addr)
    }

    /// Iterates over the base address of every row belonging to the bank that
    /// contains `addr`.
    ///
    /// This is the set of spans a RowReset-style bank initialization clears.
    pub fn bank_addresses(&self, addr: PhysAddr) -> Option<Vec<(PhysAddr, PhysAddr)>> {
        let g = self.config.geometry();
        let coords = self.decompose(addr)?;
        let rows = 1u64 << g.row_bits;
        let mut spans = Vec::with_capacity(rows as usize);
        for row in 0..rows {
            let start = self.compose(DdrCoordinates {
                column: 0,
                row,
                ..coords
            });
            spans.push((start, start + g.row_bytes()));
        }
        Some(spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn mapping() -> DdrMapping {
        DdrMapping::new(DramConfig::zcu104())
    }

    #[test]
    fn decompose_base_is_all_zero() {
        let m = mapping();
        let c = m.decompose(m.config().base()).unwrap();
        assert_eq!(
            c,
            DdrCoordinates {
                rank: 0,
                bank_group: 0,
                bank: 0,
                row: 0,
                column: 0
            }
        );
    }

    #[test]
    fn decompose_outside_window_is_none() {
        let m = mapping();
        assert!(m.decompose(PhysAddr::new(0)).is_none());
        assert!(m.decompose(m.config().end()).is_none());
    }

    #[test]
    fn compose_decompose_roundtrip_on_fixed_points() {
        let m = mapping();
        for offset in [0u64, 1, 1023, 1024, 4096, 0x1_2345, 0x7fff_ffff] {
            let addr = m.config().base() + offset;
            let coords = m.decompose(addr).unwrap();
            assert_eq!(m.compose(coords), addr, "offset {offset:#x}");
        }
    }

    #[test]
    fn row_span_contains_address_and_has_row_size() {
        let m = mapping();
        let addr = m.config().base() + 0x1_2345;
        let (start, end) = m.row_span(addr).unwrap();
        assert!(start <= addr && addr < end);
        assert_eq!(end.offset_from(start), m.config().geometry().row_bytes());
    }

    #[test]
    fn bank_addresses_enumerates_every_row_once() {
        let cfg = DramConfig::custom(
            PhysAddr::new(0x6_0000_0000),
            1 << 20,
            DdrGeometry {
                column_bits: 6,
                bank_bits: 1,
                bank_group_bits: 1,
                row_bits: 4,
                rank_bits: 0,
            },
        );
        let m = DdrMapping::new(cfg);
        let addr = cfg.base() + 5;
        let spans = m.bank_addresses(addr).unwrap();
        assert_eq!(spans.len(), 16);
        let g = cfg.geometry();
        let bank = m.decompose(addr).unwrap().bank_id(&g);
        for (start, end) in &spans {
            assert_eq!(end.offset_from(*start), g.row_bytes());
            assert_eq!(m.decompose(*start).unwrap().bank_id(&g), bank);
        }
        // All spans are distinct.
        let mut starts: Vec<_> = spans.iter().map(|(s, _)| s.as_u64()).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 16);
    }

    #[test]
    fn bank_and_row_ids_are_stable() {
        let m = mapping();
        let g = m.config().geometry();
        let a = m.config().base() + 10;
        let b = m.config().base() + 20;
        let ca = m.decompose(a).unwrap();
        let cb = m.decompose(b).unwrap();
        // Same row (both in column range of row 0, bank 0).
        assert_eq!(ca.row_id(&g), cb.row_id(&g));
        assert_eq!(ca.bank_id(&g), cb.bank_id(&g));
    }

    #[test]
    #[should_panic(expected = "column out of range")]
    fn compose_rejects_out_of_range_column() {
        let m = mapping();
        let mut c = m.decompose(m.config().base()).unwrap();
        c.column = u64::MAX;
        let _ = m.compose(c);
    }

    /// Every board configuration a campaign can put cells on — the geometry
    /// properties below must hold on all of them, not just the ZCU104.
    fn all_board_configs() -> Vec<DramConfig> {
        vec![
            DramConfig::zcu104(),
            DramConfig::zcu102(),
            DramConfig::tiny_for_tests(),
            // A 64 MiB window whose geometry covers it exactly (26 bits).
            DramConfig::custom(
                PhysAddr::new(0x6_0000_0000),
                64 * 1024 * 1024,
                DdrGeometry {
                    column_bits: 8,
                    bank_bits: 2,
                    bank_group_bits: 2,
                    row_bits: 13,
                    rank_bits: 1,
                },
            ),
        ]
    }

    proptest! {
        #[test]
        fn prop_decompose_compose_roundtrip_on_all_boards(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let addr = cfg.base() + raw % cfg.capacity();
                let coords = m.decompose(addr).unwrap();
                prop_assert_eq!(m.compose(coords), addr, "config {:?}", cfg.board());
            }
        }

        #[test]
        fn prop_coordinates_within_geometry_on_all_boards(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let g = cfg.geometry();
                let coords = m.decompose(cfg.base() + raw % cfg.capacity()).unwrap();
                prop_assert!(coords.column < (1 << g.column_bits));
                prop_assert!(coords.bank < (1 << g.bank_bits));
                prop_assert!(coords.bank_group < (1 << g.bank_group_bits));
                prop_assert!(coords.row < (1 << g.row_bits));
                prop_assert!(coords.rank < (1 << g.rank_bits));
            }
        }

        #[test]
        fn prop_same_row_shares_row_id(offset in 0u64..(2u64*1024*1024*1024 - 1024), delta in 0u64..1024) {
            let m = mapping();
            let g = m.config().geometry();
            let a = m.config().base() + (offset / 1024) * 1024;
            let b = a + delta;
            let ca = m.decompose(a).unwrap();
            let cb = m.decompose(b).unwrap();
            prop_assert_eq!(ca.row_id(&g), cb.row_id(&g));
        }

        #[test]
        fn prop_row_span_contains_address_on_all_boards(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let addr = cfg.base() + raw % cfg.capacity();
                let (start, end) = m.row_span(addr).unwrap();
                prop_assert!(start <= addr && addr < end);
                prop_assert_eq!(end.offset_from(start), cfg.geometry().row_bytes());
                // Every byte of the span shares the address's row identity.
                let g = cfg.geometry();
                let row = m.decompose(addr).unwrap().row_id(&g);
                prop_assert_eq!(m.decompose(start).unwrap().row_id(&g), row);
                prop_assert_eq!(m.decompose(end - 1).unwrap().row_id(&g), row);
            }
        }

        #[test]
        fn prop_outside_window_never_decomposes(raw in any::<u64>()) {
            for cfg in all_board_configs() {
                let m = DdrMapping::new(cfg);
                let below = PhysAddr::new(raw % cfg.base().as_u64());
                prop_assert!(m.decompose(below).is_none());
                if let Some(above) = cfg.end().checked_add(raw % (1u64 << 32)) {
                    prop_assert!(m.decompose(above).is_none());
                }
            }
        }
    }
}
