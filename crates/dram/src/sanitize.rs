//! End-of-process memory sanitization policies.
//!
//! The paper's root cause is that PetaLinux applies **no** sanitization to the
//! physical frames of a terminated process.  Its related-work section surveys
//! proposed fixes — RowClone-style bulk zeroing of contiguous DRAM, RowReset
//! bank initialization, and points out that in multi-tenant settings with
//! non-contiguous allocations these can clobber *active* guests' data.  This
//! module implements the whole family so the defense experiments (TAB-B,
//! TAB-F) can quantify the trade-off:
//!
//! | Policy | Clears | Cost | Collateral risk |
//! |---|---|---|---|
//! | [`SanitizePolicy::None`] | nothing | zero | leaves all residue (the vulnerable default) |
//! | [`SanitizePolicy::ZeroOnFree`] | exactly the freed frames | CPU stores per byte | none |
//! | [`SanitizePolicy::RowClone`] | the contiguous row-aligned span covering all freed frames | per-row in-DRAM copy (fast) | clears interleaved live data |
//! | [`SanitizePolicy::RowReset`] | every bank touched by a freed frame | per-bank reset (fastest) | clears whole banks of live data |
//! | [`SanitizePolicy::SelectiveScrub`] | exactly the freed frames, row-burst granularity | per-row activation + per-word store | none (the paper's "needed solution") |
//! | [`SanitizePolicy::Background`] | freed frames, but only after a delay | same as selective, deferred | leaves a vulnerability window |
//!
//! Sanitizers operate on the **raw** store, beneath the remanence decay view
//! ([`crate::remanence::RemanenceModel`]): a scrub clears the same bytes,
//! charges the same cycles and reports the same collateral whether the
//! residue had analog-decayed or not, and scrubbing a frame closes its decay
//! epoch (there is nothing left to decay).  The zero-ownership pass uses raw
//! bytes too, so a decayed-to-zero *view* never silently drops a frame's
//! attribution while its cells still hold recoverable charge.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{FrameNumber, PhysAddr, PAGE_SIZE};
use crate::device::{Dram, OwnerTag};
use crate::mapping::DdrMapping;

/// Cycle-cost constants of the sanitization cost model.
///
/// The absolute values are calibrated to the relative magnitudes reported in
/// the RowClone and In-DRAM Data Initialization papers (bulk in-DRAM
/// operations are one to two orders of magnitude cheaper per byte than CPU
/// stores); only the relative ordering matters for the reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizeCost {
    /// CPU cycles to store one byte of zeros from the core.
    pub cpu_store_per_byte: f64,
    /// Fixed CPU cycles of bookkeeping per freed frame.
    pub per_frame_overhead: f64,
    /// Cycles for one RowClone in-DRAM row initialization.
    pub rowclone_per_row: f64,
    /// Cycles for one RowReset bank initialization.
    pub rowreset_per_bank: f64,
    /// Cycles to activate a row before a burst of CPU stores.
    pub row_activate: f64,
}

impl Default for SanitizeCost {
    fn default() -> Self {
        SanitizeCost {
            cpu_store_per_byte: 0.25,
            per_frame_overhead: 30.0,
            rowclone_per_row: 100.0,
            rowreset_per_bank: 1500.0,
            row_activate: 20.0,
        }
    }
}

/// The sanitization policy a kernel applies when a process terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
#[derive(Default)]
pub enum SanitizePolicy {
    /// No sanitization (PetaLinux's vulnerable default).
    #[default]
    None,
    /// Zero every freed frame synchronously with CPU stores.
    ZeroOnFree,
    /// RowClone-style bulk zeroing of the contiguous row-aligned span covering
    /// all freed frames.
    RowClone,
    /// RowReset-style initialization of every DRAM bank touched by a freed
    /// frame.
    RowReset,
    /// Zero exactly the freed frames using row-granular bursts
    /// (the non-contiguous-aware scheme the paper calls for).
    SelectiveScrub,
    /// Defer scrubbing of freed frames by `delay_ticks` kernel ticks.
    Background {
        /// Number of kernel ticks before the freed frames are scrubbed.
        delay_ticks: u64,
    },
    /// Destroy the terminated owner's compressed swap slots
    /// ([`crate::swap::SwapStore`]) but leave its DRAM frames as residue —
    /// the ablation that isolates the swap channel.
    SwapScrub,
    /// Zero every freed frame *and* destroy the owner's swap slots: the
    /// two-substrate-aware scheme the swap experiments call for.  Frame-only
    /// scrubbing (plain [`SanitizePolicy::ZeroOnFree`]) leaves the compressed
    /// store fully recoverable.
    ZeroOnFreeSwap,
}

impl SanitizePolicy {
    /// All non-parameterized policies, in the order used by the defense table.
    pub fn all_basic() -> [SanitizePolicy; 5] {
        [
            SanitizePolicy::None,
            SanitizePolicy::ZeroOnFree,
            SanitizePolicy::RowClone,
            SanitizePolicy::RowReset,
            SanitizePolicy::SelectiveScrub,
        ]
    }

    /// Short name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            SanitizePolicy::None => "none",
            SanitizePolicy::ZeroOnFree => "zero-on-free",
            SanitizePolicy::RowClone => "rowclone",
            SanitizePolicy::RowReset => "rowreset",
            SanitizePolicy::SelectiveScrub => "selective-scrub",
            SanitizePolicy::Background { .. } => "background-scrub",
            SanitizePolicy::SwapScrub => "swap-scrub",
            SanitizePolicy::ZeroOnFreeSwap => "zero-on-free+swap",
        }
    }

    /// Returns `true` if this policy can clear data belonging to other live
    /// owners (the multi-tenant hazard the paper highlights).
    pub fn has_collateral_risk(&self) -> bool {
        matches!(self, SanitizePolicy::RowClone | SanitizePolicy::RowReset)
    }

    /// Returns `true` if this policy destroys the terminated owner's
    /// compressed swap slots in addition to (or instead of) its frames.
    pub fn scrubs_swap(&self) -> bool {
        matches!(
            self,
            SanitizePolicy::SwapScrub | SanitizePolicy::ZeroOnFreeSwap
        )
    }

    /// Applies the policy to the frames freed by `terminated` owner.
    ///
    /// `freed` is the set of frames the terminating process owned.  The report
    /// records what was cleared immediately, what was deferred, the modelled
    /// cycle cost, and any collateral damage to other live owners' frames.
    ///
    /// Equivalent to [`SanitizePolicy::apply_with_workers`] with one worker
    /// (fully sequential scrubbing).
    ///
    /// # Panics
    ///
    /// Panics if a freed frame lies outside the DRAM window (the kernel only
    /// ever frees frames it previously allocated from the window).
    pub fn apply(
        &self,
        dram: &mut Dram,
        terminated: OwnerTag,
        freed: &[FrameNumber],
        cost: &SanitizeCost,
    ) -> ScrubReport {
        self.apply_with_workers(dram, terminated, freed, cost, 1)
    }

    /// Applies the policy like [`SanitizePolicy::apply`], fanning the
    /// bank-addressed scrub spans (RowClone rows, RowReset banks) across
    /// `workers` bank-shard workers via [`Dram::scrub_banks_parallel`].
    ///
    /// The report and the resulting DRAM state are **identical** to the
    /// sequential application — the cost model charges the same cycles, the
    /// same bytes are cleared and the same collateral is recorded; only wall
    /// clock changes.  Frame-exact policies (zero-on-free, selective scrub)
    /// always scrub their 4 KiB frames sequentially: at that granularity a
    /// bank fan-out has nothing to win.
    ///
    /// # Panics
    ///
    /// Panics if a freed frame lies outside the DRAM window, or if `workers`
    /// is zero.
    pub fn apply_with_workers(
        &self,
        dram: &mut Dram,
        terminated: OwnerTag,
        freed: &[FrameNumber],
        cost: &SanitizeCost,
        workers: usize,
    ) -> ScrubReport {
        assert!(workers > 0, "sanitizer worker pool must be non-empty");
        let mut report = ScrubReport::new(*self, terminated, freed.len());
        // Termination retires *both* substrates: the frames become residue
        // and the owner's compressed swap slots become swap residue.  Only
        // the swap-aware policies then destroy the slots.
        dram.retire_owner(terminated);
        dram.swap_store_mut().retire_owner(terminated);
        if self.scrubs_swap() {
            let (slots, bytes) = dram.swap_store_mut().scrub_owner(terminated);
            report.swap_slots_scrubbed = slots;
            report.swap_bytes_scrubbed = bytes;
            report.cost_cycles +=
                slots as f64 * cost.per_frame_overhead + bytes as f64 * cost.cpu_store_per_byte;
        }
        if freed.is_empty() {
            return report;
        }
        let mapping = DdrMapping::new(*dram.config());

        match self {
            SanitizePolicy::None | SanitizePolicy::SwapScrub => {
                // Leave frame residue behind (the owner is already retired);
                // SwapScrub destroyed the swap slots above.
            }
            SanitizePolicy::ZeroOnFree | SanitizePolicy::ZeroOnFreeSwap => {
                for frame in freed {
                    scrub_frame(dram, *frame, &mut report);
                    report.cost_cycles +=
                        cost.per_frame_overhead + PAGE_SIZE as f64 * cost.cpu_store_per_byte;
                }
            }
            SanitizePolicy::RowClone => {
                let (span_start, span_end) = contiguous_span(freed);
                let (row_start, _) = mapping
                    .row_span(span_start)
                    .expect("freed frame outside DRAM window");
                let row_bytes = dram.config().geometry().row_bytes();
                let mut addr = row_start;
                while addr < span_end {
                    // Whole rows (the RowClone granule), with the final row
                    // clipped to the window like the mapping's spans are.
                    let len = row_bytes.min(dram.config().end().offset_from(addr));
                    scrub_span(dram, addr, len, terminated, workers, &mut report);
                    report.cost_cycles += cost.rowclone_per_row;
                    addr += row_bytes;
                }
            }
            SanitizePolicy::RowReset => {
                let mut banks_done = std::collections::HashSet::new();
                for frame in freed {
                    let base = frame.base_address();
                    let bank = mapping
                        .bank_of(base)
                        .expect("freed frame outside DRAM window");
                    if !banks_done.insert(bank) {
                        continue;
                    }
                    // The mapping clips every span to the window, so the
                    // whole bank enumeration is directly scrubable.
                    for (start, end) in mapping
                        .bank_addresses(base)
                        .expect("freed frame outside DRAM window")
                    {
                        let len = end.offset_from(start);
                        scrub_span(dram, start, len, terminated, workers, &mut report);
                    }
                    report.cost_cycles += cost.rowreset_per_bank;
                    report.banks_reset += 1;
                }
            }
            SanitizePolicy::SelectiveScrub => {
                let row_bytes = dram.config().geometry().row_bytes();
                let rows_per_frame = (PAGE_SIZE / row_bytes).max(1);
                for frame in freed {
                    scrub_frame(dram, *frame, &mut report);
                    report.cost_cycles += cost.per_frame_overhead
                        + rows_per_frame as f64 * cost.row_activate
                        + PAGE_SIZE as f64 * cost.cpu_store_per_byte;
                }
            }
            SanitizePolicy::Background { .. } => {
                report.deferred_frames = freed.to_vec();
            }
        }
        report
    }
}

impl fmt::Display for SanitizePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizePolicy::Background { delay_ticks } => {
                write!(f, "background-scrub(delay={delay_ticks})")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// Outcome of applying a [`SanitizePolicy`] at process termination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// The policy that produced this report.
    pub policy: SanitizePolicy,
    /// The terminated owner whose frames were freed.
    pub terminated: OwnerTag,
    /// Number of frames the terminating process owned.
    pub frames_freed: usize,
    /// Bytes cleared immediately.
    pub bytes_scrubbed: u64,
    /// Bytes cleared that belonged to *other, live* owners (collateral).
    pub collateral_bytes: u64,
    /// Frames of other live owners that lost data.
    pub collateral_frames: usize,
    /// Number of DRAM banks reset (RowReset only).
    pub banks_reset: usize,
    /// Modelled cycle cost of the sanitization work.
    pub cost_cycles: f64,
    /// Frames whose scrubbing was deferred (background policy only).
    pub deferred_frames: Vec<FrameNumber>,
    /// Compressed swap slots destroyed (swap-aware policies only).
    pub swap_slots_scrubbed: usize,
    /// Uncompressed bytes those slots held.
    pub swap_bytes_scrubbed: u64,
}

impl ScrubReport {
    fn new(policy: SanitizePolicy, terminated: OwnerTag, frames_freed: usize) -> Self {
        ScrubReport {
            policy,
            terminated,
            frames_freed,
            bytes_scrubbed: 0,
            collateral_bytes: 0,
            collateral_frames: 0,
            banks_reset: 0,
            cost_cycles: 0.0,
            deferred_frames: Vec::new(),
            swap_slots_scrubbed: 0,
            swap_bytes_scrubbed: 0,
        }
    }

    /// Returns `true` if the policy left the freed frames' contents intact
    /// (immediately after termination).
    pub fn leaves_residue(&self) -> bool {
        self.bytes_scrubbed == 0 && self.frames_freed > 0
    }
}

/// Immediately scrubs a deferred frame set (used by the kernel's background
/// scrubber when a deferred deadline expires).
pub fn scrub_deferred(dram: &mut Dram, frames: &[FrameNumber], cost: &SanitizeCost) -> ScrubReport {
    let mut report = ScrubReport::new(
        SanitizePolicy::Background { delay_ticks: 0 },
        OwnerTag::new(0),
        frames.len(),
    );
    for frame in frames {
        scrub_frame(dram, *frame, &mut report);
        report.cost_cycles += cost.per_frame_overhead + PAGE_SIZE as f64 * cost.cpu_store_per_byte;
    }
    report
}

fn contiguous_span(frames: &[FrameNumber]) -> (PhysAddr, PhysAddr) {
    let min = frames.iter().min().expect("non-empty");
    let max = frames.iter().max().expect("non-empty");
    (min.base_address(), max.base_address() + PAGE_SIZE)
}

fn scrub_frame(dram: &mut Dram, frame: FrameNumber, report: &mut ScrubReport) {
    let base = frame.base_address();
    dram.scrub_range(base, PAGE_SIZE)
        .expect("freed frame outside DRAM window");
    report.bytes_scrubbed += PAGE_SIZE;
}

fn scrub_span(
    dram: &mut Dram,
    start: PhysAddr,
    len: u64,
    terminated: OwnerTag,
    workers: usize,
    report: &mut ScrubReport,
) {
    // Account collateral before clearing: any frame in the span owned by a
    // different, still-live owner loses its data.
    let mut addr = start.align_down();
    let end = start + len;
    while addr < end {
        if let Some(rec) = dram.frame_ownership(addr.frame_number()) {
            if rec.owner != terminated && rec.live {
                report.collateral_frames += 1;
                report.collateral_bytes += PAGE_SIZE;
            }
        }
        addr += PAGE_SIZE;
    }
    if workers > 1 {
        dram.scrub_banks_parallel(start, len, workers)
    } else {
        dram.scrub_range(start, len)
    }
    .expect("scrub span outside DRAM window");
    report.bytes_scrubbed += len;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn setup() -> (Dram, OwnerTag, Vec<FrameNumber>) {
        let mut dram = Dram::new(DramConfig::tiny_for_tests());
        let victim = OwnerTag::new(1391);
        let base = dram.config().base();
        // Victim owns three non-contiguous frames filled with a marker.
        let frames: Vec<FrameNumber> = [0u64, 2, 5]
            .iter()
            .map(|i| (base + i * PAGE_SIZE).frame_number())
            .collect();
        for f in &frames {
            dram.fill(f.base_address(), PAGE_SIZE, 0xFF, victim)
                .unwrap();
        }
        (dram, victim, frames)
    }

    #[test]
    fn none_policy_leaves_all_residue() {
        let (mut dram, victim, frames) = setup();
        let report =
            SanitizePolicy::None.apply(&mut dram, victim, &frames, &SanitizeCost::default());
        assert!(report.leaves_residue());
        assert_eq!(report.cost_cycles, 0.0);
        assert_eq!(dram.read_u8(frames[0].base_address()).unwrap(), 0xFF);
        assert_eq!(dram.residue_frames().count(), 3);
    }

    #[test]
    fn zero_on_free_clears_exactly_the_freed_frames() {
        let (mut dram, victim, frames) = setup();
        // A live neighbour between the victim's frames.
        let other = OwnerTag::new(2000);
        let neighbour = dram.config().base() + PAGE_SIZE;
        dram.fill(neighbour, PAGE_SIZE, 0xAB, other).unwrap();

        let report =
            SanitizePolicy::ZeroOnFree.apply(&mut dram, victim, &frames, &SanitizeCost::default());
        assert_eq!(report.bytes_scrubbed, 3 * PAGE_SIZE);
        assert_eq!(report.collateral_bytes, 0);
        assert!(report.cost_cycles > 0.0);
        for f in &frames {
            assert_eq!(dram.read_u8(f.base_address()).unwrap(), 0);
        }
        // Neighbour untouched.
        assert_eq!(dram.read_u8(neighbour).unwrap(), 0xAB);
    }

    #[test]
    fn rowclone_clears_contiguous_span_including_live_neighbours() {
        let (mut dram, victim, frames) = setup();
        let other = OwnerTag::new(2000);
        let neighbour = dram.config().base() + PAGE_SIZE; // between frame 0 and 2
        dram.fill(neighbour, PAGE_SIZE, 0xAB, other).unwrap();

        let report =
            SanitizePolicy::RowClone.apply(&mut dram, victim, &frames, &SanitizeCost::default());
        // The whole [frame0, frame5] span is cleared, collateral recorded.
        assert!(report.collateral_bytes >= PAGE_SIZE);
        assert!(report.collateral_frames >= 1);
        assert_eq!(dram.read_u8(neighbour).unwrap(), 0);
        for f in &frames {
            assert_eq!(dram.read_u8(f.base_address()).unwrap(), 0);
        }
    }

    #[test]
    fn rowclone_is_cheaper_per_byte_than_zero_on_free() {
        let (mut dram_a, victim, frames) = setup();
        let report_zero = SanitizePolicy::ZeroOnFree.apply(
            &mut dram_a,
            victim,
            &frames,
            &SanitizeCost::default(),
        );
        let (mut dram_b, victim_b, frames_b) = setup();
        let report_rc = SanitizePolicy::RowClone.apply(
            &mut dram_b,
            victim_b,
            &frames_b,
            &SanitizeCost::default(),
        );
        let zero_per_byte = report_zero.cost_cycles / report_zero.bytes_scrubbed as f64;
        let rc_per_byte = report_rc.cost_cycles / report_rc.bytes_scrubbed as f64;
        assert!(
            rc_per_byte < zero_per_byte,
            "rowclone {rc_per_byte} should be cheaper per byte than zero-on-free {zero_per_byte}"
        );
    }

    #[test]
    fn rowreset_resets_banks_and_has_largest_collateral() {
        let (mut dram, victim, frames) = setup();
        let other = OwnerTag::new(2000);
        // Live data far away but (by construction of the tiny window) in the
        // same bank as a freed frame.
        let far = dram.config().base() + 9 * PAGE_SIZE;
        dram.fill(far, PAGE_SIZE, 0xAB, other).unwrap();

        let report =
            SanitizePolicy::RowReset.apply(&mut dram, victim, &frames, &SanitizeCost::default());
        assert!(report.banks_reset >= 1);
        for f in &frames {
            assert_eq!(dram.read_u8(f.base_address()).unwrap(), 0);
        }
        // In the tiny 16 MiB window every frame shares the small set of banks,
        // so the far-away live page is collateral.
        assert!(report.collateral_bytes >= PAGE_SIZE);
        assert_eq!(dram.read_u8(far).unwrap(), 0);
    }

    #[test]
    fn selective_scrub_has_no_collateral() {
        let (mut dram, victim, frames) = setup();
        let other = OwnerTag::new(2000);
        let neighbour = dram.config().base() + PAGE_SIZE;
        dram.fill(neighbour, PAGE_SIZE, 0xAB, other).unwrap();

        let report = SanitizePolicy::SelectiveScrub.apply(
            &mut dram,
            victim,
            &frames,
            &SanitizeCost::default(),
        );
        assert_eq!(report.collateral_bytes, 0);
        assert_eq!(report.bytes_scrubbed, 3 * PAGE_SIZE);
        assert_eq!(dram.read_u8(neighbour).unwrap(), 0xAB);
    }

    #[test]
    fn background_defers_scrubbing() {
        let (mut dram, victim, frames) = setup();
        let report = SanitizePolicy::Background { delay_ticks: 10 }.apply(
            &mut dram,
            victim,
            &frames,
            &SanitizeCost::default(),
        );
        assert!(report.leaves_residue());
        assert_eq!(report.deferred_frames.len(), 3);
        // Residue still readable during the window.
        assert_eq!(dram.read_u8(frames[0].base_address()).unwrap(), 0xFF);

        // Later, the kernel scrubs the deferred set.
        let done = scrub_deferred(&mut dram, &report.deferred_frames, &SanitizeCost::default());
        assert_eq!(done.bytes_scrubbed, 3 * PAGE_SIZE);
        assert_eq!(dram.read_u8(frames[0].base_address()).unwrap(), 0);
    }

    #[test]
    fn bank_parallel_application_is_identical_to_sequential() {
        // The bank-addressed policies (RowClone / RowReset) must produce the
        // same report and the same DRAM state whether their spans run on one
        // worker or fan out over the bank shards.
        for policy in [SanitizePolicy::RowClone, SanitizePolicy::RowReset] {
            let (mut serial_dram, victim, frames) = setup();
            let (mut parallel_dram, victim_p, frames_p) = setup();
            let other = OwnerTag::new(2000);
            for dram in [&mut serial_dram, &mut parallel_dram] {
                let neighbour = dram.config().base() + PAGE_SIZE;
                dram.fill(neighbour, PAGE_SIZE, 0xAB, other).unwrap();
            }

            let serial = policy.apply(&mut serial_dram, victim, &frames, &SanitizeCost::default());
            let parallel = policy.apply_with_workers(
                &mut parallel_dram,
                victim_p,
                &frames_p,
                &SanitizeCost::default(),
                4,
            );
            assert_eq!(serial, parallel, "{policy} report");
            let mut a = vec![0u8; 10 * PAGE_SIZE as usize];
            let mut b = vec![0u8; 10 * PAGE_SIZE as usize];
            serial_dram
                .read_bytes(serial_dram.config().base(), &mut a)
                .unwrap();
            parallel_dram
                .read_bytes(parallel_dram.config().base(), &mut b)
                .unwrap();
            assert_eq!(a, b, "{policy} contents");
            assert_eq!(
                serial_dram.stats().deterministic_view(),
                parallel_dram.stats().deterministic_view(),
                "{policy} stats"
            );
            assert_eq!(serial_dram.residue_bytes(), parallel_dram.residue_bytes());
        }
    }

    #[test]
    fn sanitizers_are_remanence_independent() {
        // A policy applied under a decaying remanence model produces the
        // identical report (bytes, cost, collateral) as under the perfect
        // model — scrubbing works on the raw store — and it closes the decay
        // epoch of everything it clears.
        use crate::remanence::RemanenceModel;
        for policy in SanitizePolicy::all_basic() {
            let (mut perfect_dram, victim, frames) = setup();
            let (mut decayed_dram, victim_d, frames_d) = setup();
            decayed_dram.set_remanence(RemanenceModel::Exponential { half_life_ticks: 1 });
            decayed_dram.set_remanence_seed(11);
            decayed_dram.retire_owner(victim_d);
            decayed_dram.advance_remanence(10);
            // The decayed *view* is mostly gone, but the raw residue the
            // sanitizer must clear is fully intact.
            assert_eq!(decayed_dram.residue_bytes(), 3 * PAGE_SIZE);

            let a = policy.apply(&mut perfect_dram, victim, &frames, &SanitizeCost::default());
            let b = policy.apply(
                &mut decayed_dram,
                victim_d,
                &frames_d,
                &SanitizeCost::default(),
            );
            assert_eq!(a, b, "{policy} report must not depend on remanence");
            // Frame-exact and span policies clear everything; RowReset is
            // bank-granular and leaves the other bank groups' columns (its
            // known partial-stripe behavior, pinned by the defense sweeps).
            if matches!(
                policy,
                SanitizePolicy::ZeroOnFree
                    | SanitizePolicy::RowClone
                    | SanitizePolicy::SelectiveScrub
            ) {
                assert_eq!(decayed_dram.residue_decay(None).raw_bytes, 0, "{policy}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "worker pool must be non-empty")]
    fn zero_worker_application_is_rejected() {
        let (mut dram, victim, frames) = setup();
        let _ = SanitizePolicy::RowClone.apply_with_workers(
            &mut dram,
            victim,
            &frames,
            &SanitizeCost::default(),
            0,
        );
    }

    #[test]
    fn empty_free_list_is_a_noop() {
        let mut dram = Dram::new(DramConfig::tiny_for_tests());
        let report = SanitizePolicy::ZeroOnFree.apply(
            &mut dram,
            OwnerTag::new(1),
            &[],
            &SanitizeCost::default(),
        );
        assert_eq!(report.bytes_scrubbed, 0);
        assert_eq!(report.frames_freed, 0);
        assert!(!report.leaves_residue());
    }

    #[test]
    fn policy_metadata() {
        assert_eq!(SanitizePolicy::all_basic().len(), 5);
        assert!(SanitizePolicy::RowClone.has_collateral_risk());
        assert!(SanitizePolicy::RowReset.has_collateral_risk());
        assert!(!SanitizePolicy::SelectiveScrub.has_collateral_risk());
        assert_eq!(SanitizePolicy::default(), SanitizePolicy::None);
        assert_eq!(SanitizePolicy::None.to_string(), "none");
        assert_eq!(
            SanitizePolicy::Background { delay_ticks: 4 }.to_string(),
            "background-scrub(delay=4)"
        );
        assert_eq!(SanitizePolicy::SwapScrub.to_string(), "swap-scrub");
        assert_eq!(
            SanitizePolicy::ZeroOnFreeSwap.to_string(),
            "zero-on-free+swap"
        );
        assert!(SanitizePolicy::SwapScrub.scrubs_swap());
        assert!(SanitizePolicy::ZeroOnFreeSwap.scrubs_swap());
        assert!(!SanitizePolicy::ZeroOnFree.scrubs_swap());
        assert!(!SanitizePolicy::SwapScrub.has_collateral_risk());
        assert!(!SanitizePolicy::ZeroOnFreeSwap.has_collateral_risk());
    }

    #[test]
    fn frame_only_policies_leave_the_swap_store_recoverable() {
        let (mut dram, victim, frames) = setup();
        dram.swap_store_mut().swap_out(victim, 0, &[0xEE; 4096]);
        let report =
            SanitizePolicy::ZeroOnFree.apply(&mut dram, victim, &frames, &SanitizeCost::default());
        assert_eq!(report.swap_slots_scrubbed, 0);
        // Frames are gone, but the compressed slot became residue and yields
        // the whole page — the leak channel the swap-aware policies close.
        assert_eq!(dram.residue_bytes(), 0);
        assert_eq!(dram.swap_store().residue_bytes(Some(victim)), 4096);
    }

    #[test]
    fn swap_aware_policies_destroy_the_slots() {
        // ZeroOnFreeSwap clears both substrates; SwapScrub clears only swap.
        let (mut dram, victim, frames) = setup();
        dram.swap_store_mut().swap_out(victim, 0, &[0xEE; 4096]);
        let report = SanitizePolicy::ZeroOnFreeSwap.apply(
            &mut dram,
            victim,
            &frames,
            &SanitizeCost::default(),
        );
        assert_eq!(report.swap_slots_scrubbed, 1);
        assert_eq!(report.swap_bytes_scrubbed, 4096);
        assert_eq!(report.bytes_scrubbed, 3 * PAGE_SIZE);
        assert_eq!(dram.residue_bytes(), 0);
        assert_eq!(dram.swap_store().residue_bytes(None), 0);

        let (mut dram, victim, frames) = setup();
        dram.swap_store_mut().swap_out(victim, 1, &[0xAA; 4096]);
        let report =
            SanitizePolicy::SwapScrub.apply(&mut dram, victim, &frames, &SanitizeCost::default());
        assert_eq!(report.swap_slots_scrubbed, 1);
        assert!(report.leaves_residue(), "frames must survive SwapScrub");
        assert_eq!(dram.residue_bytes(), 3 * PAGE_SIZE);
        assert_eq!(dram.swap_store().residue_bytes(None), 0);
        assert!(report.cost_cycles > 0.0);
    }
}
