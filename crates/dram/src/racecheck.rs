//! Shadow-state disjointness checker for the bank-parallel paths.
//!
//! The parallel operations in this workspace are data-race-free *by
//! construction*: `Dram::scrape_banks_parallel` hands each worker a
//! `split_at_mut` piece of the output buffer, `Dram::scrub_banks_parallel`
//! gives each worker a `chunks_mut` block of bank shards, and the streaming
//! campaign collector claims cell blocks under a mutex.  The borrow checker
//! proves the *memory* is disjoint, but nothing previously checked that the
//! *logical intervals* those borrows are meant to cover — stripe ranges,
//! bank ordinals, cell indexes — actually partition the request without
//! cross-worker overlap or gaps introduced by an arithmetic slip.
//!
//! This module is that check.  Behind the `race-check` feature (release
//! builds are untouched), each parallel operation records one
//! `(worker, interval)` pair per piece of work into an [`AccessLog`] and
//! asserts **cross-worker disjointness** when the scope joins.  The global
//! counters ([`stats`]) let the differential and determinism suites assert
//! that the checker really ran over their workloads and found zero overlaps
//! — turning "the tests happened to pass" into "every interval the workers
//! touched was provably private to one worker".
//!
//! Interval units are per-operation (documented at each call site): byte
//! offsets for scrapes, bank ordinals for scrubs, cell indexes for the
//! streaming engine.  Logs from different operations are never mixed, so the
//! units never collide.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Operations whose interval sets were checked (one per [`AccessLog`]
/// finished).
static OPS_CHECKED: AtomicU64 = AtomicU64::new(0);
/// Total `(worker, interval)` pairs recorded across all logs.
static INTERVALS_RECORDED: AtomicU64 = AtomicU64::new(0);
/// Cross-worker overlaps detected (incremented before the panic, so a
/// supervising harness can still read a non-zero count).
static OVERLAPS_FOUND: AtomicU64 = AtomicU64::new(0);

/// Snapshot of the global race-check counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceCheckStats {
    /// Parallel operations whose access logs were verified.
    pub ops_checked: u64,
    /// Intervals recorded across those operations.
    pub intervals_recorded: u64,
    /// Cross-worker overlaps found (always 0 unless an assertion fired).
    pub overlaps_found: u64,
}

/// Reads the global counters (monotonic over the process lifetime).
pub fn stats() -> RaceCheckStats {
    RaceCheckStats {
        ops_checked: OPS_CHECKED.load(Ordering::Relaxed),
        intervals_recorded: INTERVALS_RECORDED.load(Ordering::Relaxed),
        overlaps_found: OVERLAPS_FOUND.load(Ordering::Relaxed),
    }
}

/// Shadow log of one parallel operation: every `(worker, interval)` access
/// the operation's workers performed, checked for cross-worker disjointness
/// by [`AccessLog::finish`].
#[derive(Debug)]
pub struct AccessLog {
    /// Operation name, used in the overlap panic message.
    op: &'static str,
    intervals: Mutex<Vec<(usize, Range<u64>)>>,
}

impl AccessLog {
    /// Opens a log for one parallel operation.
    pub fn new(op: &'static str) -> Self {
        AccessLog {
            op,
            intervals: Mutex::new(Vec::new()),
        }
    }

    /// Records that `worker` is about to touch `interval` (empty intervals
    /// are ignored).  Units are whatever the operation chose; they only have
    /// to be consistent within one log.
    pub fn record(&self, worker: usize, interval: Range<u64>) {
        if interval.is_empty() {
            return;
        }
        self.intervals
            .lock()
            .expect("race-check log poisoned")
            .push((worker, interval));
    }

    /// Verifies the recorded intervals: no interval of one worker may
    /// intersect an interval of a different worker.
    ///
    /// # Panics
    ///
    /// Panics (after bumping the overlap counter) on the first cross-worker
    /// overlap, naming the operation, both workers and both intervals.
    pub fn finish(self) {
        let mut intervals = self
            .intervals
            .into_inner()
            .expect("race-check log poisoned");
        intervals.sort_by_key(|(_, range)| (range.start, range.end));
        // Sweep with the latest-ending predecessor: after sorting by start,
        // any overlap must involve the interval with the maximal end seen so
        // far.  Same-worker overlap is legal (a worker may revisit its own
        // allotment); only cross-worker intersection is a race.
        let mut max_end: Option<(usize, Range<u64>)> = None;
        for (worker, range) in &intervals {
            if let Some((prev_worker, prev_range)) = &max_end {
                if range.start < prev_range.end && worker != prev_worker {
                    OVERLAPS_FOUND.fetch_add(1, Ordering::Relaxed);
                    panic!(
                        "race-check: {op}: worker {w1} interval {r1:?} overlaps \
                         worker {w2} interval {r2:?}",
                        op = self.op,
                        w1 = prev_worker,
                        r1 = prev_range,
                        w2 = worker,
                        r2 = range,
                    );
                }
            }
            if max_end
                .as_ref()
                .is_none_or(|(_, prev)| range.end > prev.end)
            {
                max_end = Some((*worker, range.clone()));
            }
        }
        OPS_CHECKED.fetch_add(1, Ordering::Relaxed);
        INTERVALS_RECORDED.fetch_add(intervals.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_intervals_pass_and_count() {
        let before = stats();
        let log = AccessLog::new("test::disjoint");
        log.record(0, 0..10);
        log.record(1, 10..20);
        log.record(2, 25..30);
        log.record(0, 20..25);
        log.record(3, 40..40); // empty: ignored
        log.finish();
        let after = stats();
        assert_eq!(after.ops_checked, before.ops_checked + 1);
        assert_eq!(after.intervals_recorded, before.intervals_recorded + 4);
        assert_eq!(after.overlaps_found, before.overlaps_found);
    }

    #[test]
    fn same_worker_overlap_is_legal() {
        let log = AccessLog::new("test::same-worker");
        log.record(5, 0..100);
        log.record(5, 50..60);
        log.finish();
    }

    #[test]
    fn cross_worker_overlap_panics_and_counts() {
        let before = stats();
        let result = std::panic::catch_unwind(|| {
            let log = AccessLog::new("test::overlap");
            log.record(0, 0..10);
            log.record(1, 9..12);
            log.finish();
        });
        assert!(result.is_err(), "cross-worker overlap must panic");
        assert_eq!(stats().overlaps_found, before.overlaps_found + 1);
    }

    #[test]
    fn containment_across_a_gap_is_still_detected() {
        // Sorted by start: (0, 0..100), (1, 10..20), (0, 30..40).  A naive
        // adjacent-pair sweep would compare 10..20 with 30..40 and miss that
        // 30..40 sits inside worker 1's 0..100 — the max-end sweep does not.
        let result = std::panic::catch_unwind(|| {
            let log = AccessLog::new("test::containment");
            log.record(1, 0..100);
            log.record(1, 10..20);
            log.record(0, 30..40);
            log.finish();
        });
        assert!(
            result.is_err(),
            "contained cross-worker interval must panic"
        );
    }
}
