//! Zero-copy scrape views: borrowed, gap-aware windows over the bank arenas.
//!
//! A [`ScrapeView`] is a page-table-like sequence of `&[u8]` slices — an
//! optional partial *head* followed by uniform power-of-two *unit* chunks
//! (only the last may be shorter) — referencing the bank slabs directly, with
//! never-written regions aliasing one shared static zero chunk.  The uniform
//! grid makes random access pure shift/mask arithmetic, so the analysis
//! stages can run their original byte-level algorithms over the view without
//! ever assembling an owned copy of the scraped range.
//!
//! Views are produced by [`Dram::scrape_view`](crate::Dram::scrape_view)
//! (only under the perfect remanence model — decay requires an owned
//! transform) and can be stitched (per-page scrapes) or padded with zeros
//! (window-end clamping) by the consumer via [`ScrapeView::append`] and
//! [`ScrapeView::push_zeros`].

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use crate::addr::PAGE_SIZE;

/// [`PAGE_SIZE`] as a `usize` length.  The compile-time guard makes the
/// cast provably lossless on every supported target, so this is the one
/// place the module converts between the two widths.
#[allow(clippy::cast_possible_truncation)]
const PAGE_USIZE: usize = {
    assert!(PAGE_SIZE <= u32::MAX as u64, "page size fits usize");
    PAGE_SIZE as usize
};

/// One shared all-zero chunk backing every gap in every view.  `PAGE_SIZE`
/// bytes is enough for any unit: units are `min(stripe_bytes, PAGE_SIZE)`.
static ZERO: [u8; PAGE_USIZE] = [0u8; PAGE_USIZE];

/// A borrowed static zero slice of `len` bytes (`len <= PAGE_SIZE`), used
/// for never-written stripes, missing pages and padding.
pub fn zero_chunk(len: usize) -> &'static [u8] {
    &ZERO[..len]
}

/// A borrowed, zero-copy byte view over non-contiguous memory.
///
/// Layout: an arbitrary-length `head` segment, then chunks of exactly
/// `unit` bytes each (a power of two), except the final chunk which may be
/// partial.  Byte `i` is located in O(1): in the head if `i < head.len()`,
/// otherwise in chunk `(i - head.len()) >> unit_shift`.
#[derive(Debug, Clone)]
pub struct ScrapeView<'a> {
    /// Leading segment of arbitrary length (empty when the view starts on a
    /// unit boundary).
    head: &'a [u8],
    /// Uniform `unit`-sized chunks; only the last may be shorter.
    chunks: Vec<&'a [u8]>,
    unit_shift: u32,
    len: usize,
}

impl<'a> ScrapeView<'a> {
    /// Creates an empty view with the given chunk unit (a power of two, at
    /// most [`PAGE_SIZE`]).
    pub fn with_unit(unit: usize) -> Self {
        assert!(
            unit.is_power_of_two() && unit <= PAGE_USIZE,
            "view unit must be a power of two no larger than a page"
        );
        ScrapeView {
            head: &[],
            chunks: Vec::new(),
            unit_shift: unit.trailing_zeros(),
            len: 0,
        }
    }

    /// Wraps one contiguous slice as a single-segment view (the delegation
    /// path that lets owned [`MemoryDump`]-style buffers reuse the
    /// view-based analysis cores verbatim).
    ///
    /// [`MemoryDump`]: https://docs.rs/msa-core
    pub fn from_slice(bytes: &'a [u8]) -> Self {
        ScrapeView {
            head: bytes,
            chunks: Vec::new(),
            unit_shift: PAGE_USIZE.trailing_zeros(),
            len: bytes.len(),
        }
    }

    /// The uniform chunk size in bytes.
    pub fn unit(&self) -> usize {
        1 << self.unit_shift
    }

    /// Total number of bytes the view covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the view covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sets the leading partial segment.  Only valid before any chunk has
    /// been pushed on an empty view.
    pub fn set_head(&mut self, head: &'a [u8]) {
        debug_assert!(self.len == 0 && self.chunks.is_empty());
        self.len = head.len();
        self.head = head;
    }

    /// Appends one chunk (at most `unit` bytes).  A shorter chunk seals the
    /// view: only the final chunk may be partial, which is what keeps the
    /// grid uniform.
    pub fn push_chunk(&mut self, chunk: &'a [u8]) {
        debug_assert!(chunk.len() <= self.unit());
        debug_assert!(
            self.chunks.last().is_none_or(|c| c.len() == self.unit()),
            "only the final chunk of a view may be partial"
        );
        self.len += chunk.len();
        self.chunks.push(chunk);
    }

    /// Appends `len` zero bytes as shared zero chunks (gap pages, window-end
    /// padding).
    pub fn push_zeros(&mut self, mut len: usize) {
        while len > 0 {
            let chunk = len.min(self.unit());
            self.push_chunk(zero_chunk(chunk));
            len -= chunk;
        }
    }

    /// Appends all chunks of `other` (same unit, empty head) to this view.
    /// Used to stitch per-page scrape views into one heap view.
    pub fn append(&mut self, other: ScrapeView<'a>) {
        debug_assert_eq!(other.unit_shift, self.unit_shift, "mismatched view units");
        debug_assert!(other.head.is_empty(), "appended views must be unit-aligned");
        for chunk in other.chunks {
            self.push_chunk(chunk);
        }
    }

    /// The byte at offset `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn byte_at(&self, i: usize) -> u8 {
        if i < self.head.len() {
            return self.head[i];
        }
        let j = i - self.head.len();
        self.chunks[j >> self.unit_shift][j & (self.unit() - 1)]
    }

    /// `true` when the four bytes at `[i, i + 4)` equal `word` (`false`
    /// whenever fewer than four bytes remain).
    #[inline]
    pub fn word_eq(&self, i: usize, word: &[u8; 4]) -> bool {
        match self.try_borrow(i, 4) {
            Some(slice) => slice == word,
            None => i + 4 <= self.len && (0..4).all(|k| self.byte_at(i + k) == word[k]),
        }
    }

    /// Borrows `[offset, offset + len)` when the range lies entirely inside
    /// one segment; `None` when it straddles a boundary (or is out of range).
    pub fn try_borrow(&self, offset: usize, len: usize) -> Option<&'a [u8]> {
        let end = offset.checked_add(len)?;
        if end > self.len {
            return None;
        }
        if end <= self.head.len() {
            return Some(&self.head[offset..end]);
        }
        if offset < self.head.len() {
            return None;
        }
        let j = offset - self.head.len();
        let chunk = self.chunks[j >> self.unit_shift];
        let within = j & (self.unit() - 1);
        if within + len <= chunk.len() {
            Some(&chunk[within..within + len])
        } else {
            None
        }
    }

    /// Copies `[offset, offset + buf.len())` into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the view.
    pub fn copy_into(&self, offset: usize, buf: &mut [u8]) {
        let end = offset.checked_add(buf.len());
        assert!(
            end.is_some_and(|end| end <= self.len),
            "copy_into out of range"
        );
        let mut cursor = 0usize;
        for segment in self.segments_from(offset) {
            if cursor == buf.len() {
                break;
            }
            let take = segment.len().min(buf.len() - cursor);
            buf[cursor..cursor + take].copy_from_slice(&segment[..take]);
            cursor += take;
        }
        debug_assert_eq!(cursor, buf.len());
    }

    /// Copies `[offset, offset + len)` out into an owned vector, or `None`
    /// when the range exceeds the view (mirrors `MemoryDump::slice`).
    pub fn to_vec_range(&self, offset: usize, len: usize) -> Option<Vec<u8>> {
        if offset.checked_add(len)? > self.len {
            return None;
        }
        if let Some(slice) = self.try_borrow(offset, len) {
            return Some(slice.to_vec());
        }
        let mut out = vec![0u8; len];
        self.copy_into(offset, &mut out);
        Some(out)
    }

    /// Copies the whole view into one owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len];
        self.copy_into(0, &mut out);
        out
    }

    /// The non-empty segments (head, then chunks) in offset order.
    pub fn segments(&self) -> impl Iterator<Item = &'a [u8]> + '_ {
        std::iter::once(self.head)
            .chain(self.chunks.iter().copied())
            .filter(|s| !s.is_empty())
    }

    /// The non-empty segments starting from global offset `offset`: the
    /// first yielded segment begins exactly at `offset`.
    fn segments_from(&self, offset: usize) -> impl Iterator<Item = &'a [u8]> + '_ {
        let head_len = self.head.len();
        let unit = self.unit();
        let (first, skip, within) = if offset < head_len {
            (Some(&self.head[offset..]), 0, 0)
        } else {
            let j = offset - head_len;
            (None, j >> self.unit_shift, j & (unit - 1))
        };
        first
            .into_iter()
            .chain(
                self.chunks
                    .iter()
                    .skip(skip)
                    .enumerate()
                    .map(move |(i, &chunk)| {
                        if i == 0 && first.is_none() {
                            &chunk[within.min(chunk.len())..]
                        } else {
                            chunk
                        }
                    }),
            )
            .filter(|s| !s.is_empty())
    }

    /// Offset of the first occurrence of `needle`, searching segment-wise
    /// with small bridge buffers over the boundaries — earliest-match
    /// identical to `self.to_vec().windows(n).position(..)` without
    /// materializing the view.
    pub fn find(&self, needle: &[u8]) -> Option<usize> {
        let n = needle.len();
        if n == 0 || n > self.len {
            return None;
        }
        if n > self.unit() && !self.chunks.is_empty() {
            // A needle longer than a whole middle segment could span three
            // segments, which the two-segment bridge below cannot order
            // correctly — fall back to an owned search (needles that long do
            // not occur on the hot signature/probe paths).
            let owned = self.to_vec();
            return owned.windows(n).position(|w| w == needle);
        }
        let mut tail: Vec<u8> = Vec::new();
        let mut bridge: Vec<u8> = Vec::new();
        let mut position = 0usize;
        for segment in self.segments() {
            // Boundary-spanning matches start before `position`, so they are
            // checked before this segment's internal matches; internal
            // matches of the previous segment all start earlier than any
            // spanning match.  First-match order is therefore preserved.
            if n > 1 && !tail.is_empty() {
                bridge.clear();
                bridge.extend_from_slice(&tail);
                bridge.extend_from_slice(&segment[..segment.len().min(n - 1)]);
                if bridge.len() >= n {
                    if let Some(p) = bridge.windows(n).position(|w| w == needle) {
                        if p < tail.len() {
                            return Some(position - tail.len() + p);
                        }
                    }
                }
            }
            if segment.len() >= n {
                if let Some(p) = segment.windows(n).position(|w| w == needle) {
                    return Some(position + p);
                }
            }
            if n > 1 {
                if segment.len() >= n - 1 {
                    tail.clear();
                    tail.extend_from_slice(&segment[segment.len() - (n - 1)..]);
                } else {
                    tail.extend_from_slice(segment);
                    let excess = tail.len().saturating_sub(n - 1);
                    if excess > 0 {
                        tail.drain(..excess);
                    }
                }
            }
            position += segment.len();
        }
        None
    }

    /// `true` when `needle` occurs anywhere in the view.
    pub fn contains_seq(&self, needle: &[u8]) -> bool {
        self.find(needle).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a view over `data` split into `unit` chunks with an optional
    /// head of `head_len` bytes.
    fn chunked<'a>(data: &'a [u8], head_len: usize, unit: usize) -> ScrapeView<'a> {
        let mut view = ScrapeView::with_unit(unit);
        if head_len > 0 {
            view.set_head(&data[..head_len]);
        }
        let mut cursor = head_len;
        while cursor < data.len() {
            let chunk = unit.min(data.len() - cursor);
            view.push_chunk(&data[cursor..cursor + chunk]);
            cursor += chunk;
        }
        view
    }

    #[test]
    fn page_sized_units_sit_exactly_on_the_accepted_boundary() {
        // `PAGE_USIZE` is the compile-time-checked image of `PAGE_SIZE`:
        // a full-page unit is legal, a full-page zero chunk exists, and
        // both agree with the `u64` constant they were derived from.
        assert_eq!(PAGE_USIZE as u64, PAGE_SIZE);
        let view = ScrapeView::with_unit(PAGE_USIZE);
        assert_eq!(view.len(), 0);
        let zeros = zero_chunk(PAGE_USIZE);
        assert_eq!(zeros.len(), PAGE_USIZE);
        assert!(zeros.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "view unit must be a power of two")]
    fn oversized_units_are_rejected() {
        let _ = ScrapeView::with_unit(PAGE_USIZE * 2);
    }

    fn sample(len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| u8::try_from(i * 7 % 251).expect("residue below 251"))
            .collect()
    }

    #[test]
    fn byte_access_matches_the_flat_buffer() {
        let data = sample(1000);
        for (head, unit) in [(0, 64), (13, 64), (63, 64), (0, 256), (100, 128)] {
            let view = chunked(&data, head, unit);
            assert_eq!(view.len(), data.len());
            for (i, &expected) in data.iter().enumerate() {
                assert_eq!(view.byte_at(i), expected, "head={head} unit={unit} i={i}");
            }
            assert_eq!(view.to_vec(), data);
        }
    }

    #[test]
    fn try_borrow_only_within_one_segment() {
        let data = sample(256);
        let view = chunked(&data, 10, 64);
        assert_eq!(view.try_borrow(0, 10).unwrap(), &data[..10]);
        assert_eq!(view.try_borrow(10, 64).unwrap(), &data[10..74]);
        assert!(view.try_borrow(8, 8).is_none(), "straddles head/chunk");
        assert!(view.try_borrow(70, 10).is_none(), "straddles chunks");
        assert!(view.try_borrow(250, 10).is_none(), "past the end");
        assert_eq!(view.to_vec_range(8, 8).unwrap(), &data[8..16]);
        assert!(view.to_vec_range(250, 10).is_none());
    }

    #[test]
    fn find_matches_owned_search_across_boundaries() {
        let mut data = sample(512);
        // Plant needles straddling the head/chunk and chunk/chunk borders.
        data[60..68].copy_from_slice(b"NEEDLE-A");
        data[124..132].copy_from_slice(b"NEEDLE-B");
        let view = chunked(&data, 3, 64);
        for needle in [&b"NEEDLE-A"[..], b"NEEDLE-B", b"EDLE", b"absent!"] {
            let expected = data.windows(needle.len()).position(|w| w == needle);
            assert_eq!(view.find(needle), expected, "needle {needle:?}");
            assert_eq!(view.contains_seq(needle), expected.is_some());
        }
        // First-match order: duplicate needle, earliest offset wins.
        let first = data.windows(4).position(|w| w == &data[60..64]).unwrap();
        assert_eq!(view.find(&data[60..64]).unwrap(), first);
    }

    #[test]
    fn word_eq_and_zero_padding() {
        // Padding always starts on a unit boundary (the clamped window end
        // is page-aligned), so the last data chunk is full when zeros follow.
        let data = sample(128);
        let mut view = chunked(&data, 0, 64);
        view.push_zeros(150);
        assert_eq!(view.len(), 278);
        assert!(view.word_eq(0, &[data[0], data[1], data[2], data[3]]));
        assert!(view.word_eq(130, &[0, 0, 0, 0]));
        assert!(view.word_eq(126, &[data[126], data[127], 0, 0]), "straddle");
        assert!(!view.word_eq(276, &[0, 0, 0, 0]), "past the end is false");
        let flat = view.to_vec();
        assert_eq!(&flat[..128], &data[..]);
        assert!(flat[128..].iter().all(|&b| b == 0));
    }

    #[test]
    fn copy_into_rejects_offsets_that_overflow_the_bounds_check() {
        // Regression: the bounds check used unchecked `offset + buf.len()`,
        // which wraps in release builds for near-`usize::MAX` offsets and let
        // the assert pass before an out-of-range walk.
        let data = sample(64);
        let view = chunked(&data, 0, 64);
        let mut buf = [0u8; 8];
        let overflowing = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            view.copy_into(usize::MAX - 4, &mut buf);
        }));
        assert!(overflowing.is_err(), "wrapping offset must still panic");
        // The same range is a clean `None` on the non-panicking path.
        assert!(view.to_vec_range(usize::MAX - 4, 8).is_none());
        // In-range copies are unaffected.
        view.copy_into(4, &mut buf);
        assert_eq!(&buf, &data[4..12]);
    }

    #[test]
    fn append_stitches_unit_aligned_views() {
        let a = sample(128);
        let b = sample(100);
        let mut view = chunked(&a, 0, 64);
        view.append(chunked(&b, 0, 64));
        let mut expected = a.clone();
        expected.extend_from_slice(&b);
        assert_eq!(view.to_vec(), expected);
    }
}
