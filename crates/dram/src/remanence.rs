//! Analog DRAM remanence: per-cell decay of terminated-process residue.
//!
//! The base store models residue as all-or-nothing frames: a terminated
//! process's bytes survive bit-exactly until a sanitizer clears them.
//! Pentimento-style measurements of cloud FPGAs show the real phenomenon is
//! analog — charge leaks out of individual cells over time, so residue
//! *decays* between termination and the scrape.  [`RemanenceModel`] is that
//! axis: a deterministic, seedable model of how much of a residue byte is
//! still readable after a number of **logical ticks** (kernel clock ticks —
//! scenario steps and churned scrape chunks, never wall clock, so campaigns
//! swept over this axis stay replayable and worker-count independent).
//!
//! # Semantics
//!
//! Decay is a *view*, not a mutation: the store keeps the raw residue bytes
//! and applies the model lazily when non-owned residue is read (see
//! [`Dram`](crate::Dram)).  Three invariants make the view safe to fan out
//! across the bank-parallel scrape paths:
//!
//! - **Pure** — a cell's decayed value depends only on the decay seed, the
//!   cell's (stripe, offset) coordinates, the elapsed ticks since the stripe
//!   became residue, and the raw byte.  Sequential and bank-striped reads of
//!   the same state are therefore byte-identical by construction.
//! - **Monotone** — as elapsed ticks grow, a cell can only lose information:
//!   survival thresholds shrink ([`RemanenceModel::Exponential`]) or
//!   clear-bit thresholds grow ([`RemanenceModel::BitFlip`]).  Decay never
//!   *creates* residue: a zero byte stays zero, and a decayed byte's set bits
//!   are always a subset of the raw byte's.
//! - **Scoped** — the view applies only to frames whose owner has terminated
//!   (residue).  Live owners' data is returned raw at every tick.

// Lint audit: narrowing casts here operate on values already clamped
// to their target range by the surrounding arithmetic.
#![allow(clippy::cast_possible_truncation)]

use serde::{Deserialize, Serialize};

/// splitmix64 — the workspace's standard cheap deterministic mixer; used to
/// derive the per-cell decay randomness from the decay seed.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-cell decay draw: a uniform `u64` derived from the decay seed and
/// the cell's (bank stripe, offset-in-stripe) coordinates.  This is the
/// per-stripe decay state in functional form — every bank shard's stripes
/// draw from their own slice of the sequence, so bank-parallel readers never
/// share or race on it.
pub fn cell_hash(seed: u64, stripe: u64, offset_in_stripe: u64) -> u64 {
    let h = splitmix64(seed ^ stripe.wrapping_mul(0xA24B_AED4_963E_E407));
    splitmix64(h ^ offset_in_stripe.wrapping_mul(0x9FB2_1C65_1E98_DF25))
}

/// How residue decays between a process's termination and the scrape.
///
/// A campaign axis (swept via
/// `CampaignSpec::with_remanence_models` in `msa-core`): [`Perfect`] is the
/// base model every earlier experiment ran on, the other two degrade the
/// attacker's haul the way Pentimento-style analog retention does.
///
/// [`Perfect`]: RemanenceModel::Perfect
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
#[non_exhaustive]
pub enum RemanenceModel {
    /// Residue survives bit-exactly until sanitized (the all-or-nothing model
    /// of the base reproduction).  The decay machinery is fully inert: reads
    /// take the exact pre-remanence hot path.
    #[default]
    Perfect,
    /// Whole-byte exponential decay: a residue byte is still readable after
    /// `e` ticks with probability `2^(-e / half_life_ticks)`; a decayed byte
    /// reads as zero (its cells discharged).  `half_life_ticks == 0` means
    /// instant decay after the first tick.
    Exponential {
        /// Ticks after which half of the residue bytes have decayed to zero.
        half_life_ticks: u64,
    },
    /// Per-bit discharge: each *set* bit of a residue byte independently
    /// clears with per-tick probability `rate_ppm / 1_000_000`
    /// (cleared-bit probability after `e` ticks: `1 - (1 - p)^e`).  Bits only
    /// ever discharge toward zero, so decay never fabricates data.
    BitFlip {
        /// Per-tick, per-bit discharge probability in parts per million.
        rate_ppm: u64,
    },
}

impl RemanenceModel {
    /// `true` for the inert base model (no decay machinery runs at all).
    pub fn is_perfect(&self) -> bool {
        matches!(self, RemanenceModel::Perfect)
    }

    /// Short name used in tables and cell labels.
    pub fn name(&self) -> &'static str {
        match self {
            RemanenceModel::Perfect => "perfect",
            RemanenceModel::Exponential { .. } => "exponential",
            RemanenceModel::BitFlip { .. } => "bitflip",
        }
    }

    /// Resolves the model at a fixed elapsed-tick count into a [`DecayCurve`]
    /// that can be applied cheaply per byte (the threshold math runs once per
    /// contiguous chunk, not once per cell).
    pub fn curve(&self, elapsed_ticks: u64) -> DecayCurve {
        if elapsed_ticks == 0 {
            return DecayCurve::Identity;
        }
        match *self {
            RemanenceModel::Perfect => DecayCurve::Identity,
            RemanenceModel::Exponential { half_life_ticks } => {
                if half_life_ticks == 0 {
                    return DecayCurve::KeepBelow { threshold: 0 };
                }
                let survival = (-(elapsed_ticks as f64) / half_life_ticks as f64)
                    .exp2()
                    .min(1.0);
                let threshold = (survival * THRESHOLD_SCALE) as u64;
                if threshold == u64::MAX {
                    // The saturating f64→u64 cast rounded the survival
                    // probability up to 2^64: no hash can reach the
                    // threshold, so the curve is inert.  Returning the
                    // explicit identity keeps `is_identity()` and `apply()`
                    // in agreement for a cell hash of exactly `u64::MAX`
                    // (which `KeepBelow { u64::MAX }` would still zero).
                    return DecayCurve::Identity;
                }
                DecayCurve::KeepBelow { threshold }
            }
            RemanenceModel::BitFlip { rate_ppm } => {
                let p = (rate_ppm as f64 / 1_000_000.0).clamp(0.0, 1.0);
                let retain = (1.0 - p).powf(elapsed_ticks as f64);
                DecayCurve::ClearBitsBelow {
                    threshold: ((1.0 - retain) * THRESHOLD_SCALE) as u64,
                }
            }
        }
    }
}

impl std::fmt::Display for RemanenceModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemanenceModel::Perfect => write!(f, "perfect"),
            RemanenceModel::Exponential { half_life_ticks } => {
                write!(f, "exponential(hl={half_life_ticks})")
            }
            RemanenceModel::BitFlip { rate_ppm } => write!(f, "bitflip({rate_ppm}ppm)"),
        }
    }
}

/// `2^64` as an `f64`; probabilities are mapped onto the full `u64` hash
/// range so threshold comparisons stay pure integer ops on the per-byte path.
const THRESHOLD_SCALE: f64 = 1.844_674_407_370_955_2e19;

/// A [`RemanenceModel`] resolved at a fixed elapsed-tick count.
///
/// Thresholds are monotone in the elapsed ticks the curve was built for:
/// `KeepBelow` thresholds only ever shrink and `ClearBitsBelow` thresholds
/// only ever grow, which is what makes the decayed view monotone over time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecayCurve {
    /// No decay (zero elapsed ticks, or the perfect model).
    Identity,
    /// The byte survives iff its cell hash is below the threshold; otherwise
    /// it reads as zero.
    KeepBelow {
        /// Survival threshold on the full `u64` hash range.
        threshold: u64,
    },
    /// Each set bit clears iff its per-bit hash is below the threshold.
    ClearBitsBelow {
        /// Clear threshold on the full `u64` hash range.
        threshold: u64,
    },
}

impl DecayCurve {
    /// `true` when applying the curve can never change a byte.
    pub fn is_identity(&self) -> bool {
        match *self {
            DecayCurve::Identity => true,
            DecayCurve::KeepBelow { threshold } => threshold == u64::MAX,
            DecayCurve::ClearBitsBelow { threshold } => threshold == 0,
        }
    }

    /// Applies the curve to one residue byte.  `cell_hash` is the
    /// [`cell_hash`] draw of the byte's (stripe, offset) coordinates.
    pub fn apply(&self, raw: u8, cell_hash: u64) -> u8 {
        if raw == 0 {
            return 0;
        }
        match *self {
            DecayCurve::Identity => raw,
            DecayCurve::KeepBelow { threshold } => {
                if cell_hash < threshold {
                    raw
                } else {
                    0
                }
            }
            DecayCurve::ClearBitsBelow { threshold } => {
                let mut byte = raw;
                for bit in 0..8u64 {
                    let mask = 1u8 << bit;
                    if byte & mask != 0
                        && splitmix64(
                            cell_hash.wrapping_add(bit.wrapping_mul(0xD6E8_FEB8_6659_FD93)),
                        ) < threshold
                    {
                        byte &= !mask;
                    }
                }
                byte
            }
        }
    }
}

/// Residue-fidelity measurement of one owner's residue frames: how much of
/// the raw residue the decay view still exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResidueDecay {
    /// Non-zero residue bytes in the raw (pre-decay) store.
    pub raw_bytes: u64,
    /// Of those, bytes still reading non-zero through the decay view.
    pub surviving_bytes: u64,
    /// Total bits that differ between the raw residue and its decayed view.
    pub bits_flipped: u64,
}

impl ResidueDecay {
    /// Fraction of raw residue bytes still readable (1.0 when there is no
    /// residue at all — nothing existed, so nothing was lost).
    pub fn survival_rate(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.surviving_bytes as f64 / self.raw_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_model_is_always_identity() {
        let m = RemanenceModel::Perfect;
        assert!(m.is_perfect());
        for elapsed in [0u64, 1, 10, 1_000_000] {
            let curve = m.curve(elapsed);
            assert!(curve.is_identity());
            for raw in [0u8, 1, 0x5A, 0xFF] {
                assert_eq!(curve.apply(raw, 0xDEAD_BEEF), raw);
            }
        }
    }

    #[test]
    fn zero_elapsed_is_identity_for_every_model() {
        for model in [
            RemanenceModel::Exponential { half_life_ticks: 4 },
            RemanenceModel::BitFlip { rate_ppm: 500_000 },
        ] {
            assert_eq!(model.curve(0), DecayCurve::Identity);
        }
    }

    #[test]
    fn exponential_half_life_halves_the_survivors() {
        let model = RemanenceModel::Exponential { half_life_ticks: 8 };
        let curve = model.curve(8);
        let survivors = (0..100_000u64)
            .filter(|i| curve.apply(0xEE, splitmix64(*i)) != 0)
            .count();
        // One half-life elapsed: ~50% survival.
        assert!((45_000..55_000).contains(&survivors), "{survivors}");
        // Zero half-life: instant decay after the first tick.
        let instant = RemanenceModel::Exponential { half_life_ticks: 0 }.curve(1);
        assert_eq!(instant.apply(0xEE, 12345), 0);
    }

    #[test]
    fn bitflip_clears_roughly_rate_fraction_of_set_bits() {
        let model = RemanenceModel::BitFlip { rate_ppm: 250_000 };
        let curve = model.curve(1);
        let mut set = 0u64;
        let mut cleared = 0u64;
        for i in 0..20_000u64 {
            let raw = 0xFFu8;
            let decayed = curve.apply(raw, splitmix64(i));
            set += 8;
            cleared += (raw ^ decayed).count_ones() as u64;
        }
        let rate = cleared as f64 / set as f64;
        assert!((0.22..0.28).contains(&rate), "{rate}");
    }

    #[test]
    fn decay_is_monotone_in_elapsed_ticks() {
        // For every model, surviving information at a later tick is a bitwise
        // subset of the survivors at an earlier tick — for the same cell.
        for model in [
            RemanenceModel::Exponential { half_life_ticks: 3 },
            RemanenceModel::BitFlip { rate_ppm: 120_000 },
        ] {
            for cell in 0..2_000u64 {
                let hash = splitmix64(cell);
                let mut previous = 0xB7u8;
                for elapsed in [0u64, 1, 2, 5, 13, 64, 1000] {
                    let now = model.curve(elapsed).apply(0xB7, hash);
                    assert_eq!(now & previous, now, "{model} cell {cell} @{elapsed}");
                    previous = now;
                }
            }
        }
    }

    #[test]
    fn decay_never_creates_bits() {
        for model in [
            RemanenceModel::Exponential { half_life_ticks: 2 },
            RemanenceModel::BitFlip { rate_ppm: 900_000 },
        ] {
            for cell in 0..1_000u64 {
                let hash = cell_hash(7, cell, cell * 3);
                for raw in [0u8, 0x01, 0x80, 0x5A] {
                    let decayed = model.curve(9).apply(raw, hash);
                    assert_eq!(decayed & raw, decayed);
                }
                assert_eq!(model.curve(9).apply(0, hash), 0);
            }
        }
    }

    #[test]
    fn saturated_exponential_survival_is_the_explicit_identity() {
        // Regression: a huge half-life at a small elapsed-tick count rounds
        // the survival probability up to 1.0, and the saturating f64→u64
        // cast used to produce `KeepBelow { threshold: u64::MAX }` — which
        // `is_identity()` called inert while `apply()` still zeroed a byte
        // whose cell hash was exactly `u64::MAX`.
        let model = RemanenceModel::Exponential {
            half_life_ticks: u64::MAX,
        };
        let curve = model.curve(1);
        assert_eq!(curve, DecayCurve::Identity);
        assert!(curve.is_identity());
        assert_eq!(curve.apply(0xA5, u64::MAX), 0xA5);
        // The old buggy curve shape disagreed with its own identity claim.
        let stale = DecayCurve::KeepBelow {
            threshold: u64::MAX,
        };
        assert!(stale.is_identity());
    }

    proptest::proptest! {
        #[test]
        fn prop_identity_curves_never_change_a_byte(
            half_life in 1u64..u64::MAX,
            elapsed in 0u64..1_000,
            raw in proptest::prelude::any::<u8>(),
            hash in proptest::prelude::any::<u64>(),
        ) {
            for model in [
                RemanenceModel::Perfect,
                RemanenceModel::Exponential { half_life_ticks: half_life },
                RemanenceModel::BitFlip { rate_ppm: half_life % 1_000_001 },
            ] {
                let curve = model.curve(elapsed);
                if curve.is_identity() {
                    proptest::prop_assert_eq!(curve.apply(raw, hash), raw);
                    proptest::prop_assert_eq!(curve.apply(raw, u64::MAX), raw);
                }
            }
        }
    }

    #[test]
    fn cell_hash_depends_on_every_coordinate() {
        let a = cell_hash(1, 2, 3);
        assert_ne!(a, cell_hash(2, 2, 3));
        assert_ne!(a, cell_hash(1, 3, 3));
        assert_ne!(a, cell_hash(1, 2, 4));
        assert_eq!(a, cell_hash(1, 2, 3));
    }

    #[test]
    fn display_and_metadata() {
        assert_eq!(RemanenceModel::default(), RemanenceModel::Perfect);
        assert_eq!(RemanenceModel::Perfect.to_string(), "perfect");
        assert_eq!(
            RemanenceModel::Exponential { half_life_ticks: 4 }.to_string(),
            "exponential(hl=4)"
        );
        assert_eq!(
            RemanenceModel::BitFlip { rate_ppm: 250_000 }.to_string(),
            "bitflip(250000ppm)"
        );
        assert_eq!(RemanenceModel::Perfect.name(), "perfect");
        assert_eq!(
            RemanenceModel::Exponential { half_life_ticks: 1 }.name(),
            "exponential"
        );
        assert_eq!(RemanenceModel::BitFlip { rate_ppm: 1 }.name(), "bitflip");
    }

    #[test]
    fn residue_decay_survival_rate() {
        let none = ResidueDecay::default();
        assert_eq!(none.survival_rate(), 1.0);
        let half = ResidueDecay {
            raw_bytes: 100,
            surviving_bytes: 50,
            bits_flipped: 220,
        };
        assert_eq!(half.survival_rate(), 0.5);
    }
}
