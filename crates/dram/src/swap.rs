//! zram-style compressed swap: a second residue substrate.
//!
//! The base attack scrapes DRAM *frames*, and every sanitize policy so far
//! scrubs frames.  Real PetaLinux images ship a compressed in-memory swap
//! device (zram): under memory pressure the kernel compresses cold pages
//! into slots of a dedicated store.  Pages swapped out before a process
//! terminates leave their bytes in the *compressed* store, where frame
//! scrubbing never reaches them — a leak channel that forces both the
//! attacker and the defenses to reason about a second backing store.
//!
//! [`SwapStore`] models that device: page-sized slots compressed with a
//! deterministic PackBits-style RLE codec ([`compress_page`] /
//! [`decompress_page`]), each slot carrying its own ownership/residue tag
//! and its own remanence decay state.  The decay clock is logical, advanced
//! in lock-step with the DRAM device's ([`crate::Dram::advance_remanence`]),
//! so swap residue decays replayably and worker-count independently, exactly
//! like frame residue.

// Lint audit: indexes and slice bounds here are established by the
// surrounding length checks / loop invariants before use.
#![allow(clippy::indexing_slicing)]

use serde::{Deserialize, Serialize};

use crate::addr::PAGE_SIZE;
use crate::device::OwnerTag;
use crate::remanence::{cell_hash, splitmix64, RemanenceModel};

/// Longest run one repeat token can encode.
const MAX_RUN: usize = 128;
/// Longest literal chunk one literal token can carry.
const MAX_LITERAL: usize = 128;

/// Compresses a page with a PackBits-style run-length codec.
///
/// Token stream: a header byte `n <= 127` is followed by `n + 1` literal
/// bytes; a header byte `n >= 129` repeats the following byte `257 - n`
/// times (runs of 2..=128).  Header `128` is never emitted.  The codec is
/// deterministic (greedy longest-run), so identical pages always produce
/// identical slots — a requirement for the golden-pinned experiments.
pub fn compress_page(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 4 + 8);
    let mut literal_start = 0usize;
    let mut cursor = 0usize;
    while cursor < data.len() {
        let byte = data[cursor];
        let mut run = 1usize;
        while run < MAX_RUN && cursor + run < data.len() && data[cursor + run] == byte {
            run += 1;
        }
        if run >= 2 {
            flush_literals(&mut out, &data[literal_start..cursor]);
            // `2 <= run <= MAX_RUN = 128`, so the token is in `129..=255`.
            let token = u8::try_from(257 - run).expect("run token fits a byte");
            out.push(token);
            out.push(byte);
            cursor += run;
            literal_start = cursor;
        } else {
            cursor += 1;
        }
    }
    flush_literals(&mut out, &data[literal_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, mut literals: &[u8]) {
    while !literals.is_empty() {
        let chunk = literals.len().min(MAX_LITERAL);
        // `1 <= chunk <= MAX_LITERAL = 128`, so the token is in `0..=127`.
        let token = u8::try_from(chunk - 1).expect("literal token fits a byte");
        out.push(token);
        out.extend_from_slice(&literals[..chunk]);
        literals = &literals[chunk..];
    }
}

/// Decompresses a [`compress_page`] token stream back to `raw_len` bytes.
///
/// Truncated or damaged streams (a scrubbed or decayed slot) decode as far
/// as they can and zero-pad the tail — the attacker-facing behavior: a
/// partially destroyed slot yields partial plaintext, never a panic.
pub fn decompress_page(data: &[u8], raw_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(raw_len);
    let mut cursor = 0usize;
    while cursor < data.len() && out.len() < raw_len {
        let header = data[cursor] as usize;
        cursor += 1;
        if header <= 127 {
            let take = (header + 1)
                .min(data.len() - cursor)
                .min(raw_len - out.len());
            out.extend_from_slice(&data[cursor..cursor + take]);
            cursor += header + 1;
        } else if header >= 129 {
            if cursor >= data.len() {
                break;
            }
            let byte = data[cursor];
            cursor += 1;
            let count = (257 - header).min(raw_len - out.len());
            out.resize(out.len() + count, byte);
        }
        // header == 128: reserved no-op.
    }
    out.resize(raw_len, 0);
    out
}

/// One compressed page slot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SwapSlot {
    owner: OwnerTag,
    /// `true` while the owning process is alive; `false` once it has
    /// terminated (the slot then holds *swap residue*).
    live: bool,
    /// Heap page index the slot was swapped out from (page offset from the
    /// owner's heap base), so the attacker can place recovered plaintext.
    page_index: u64,
    compressed: Vec<u8>,
    raw_len: usize,
    /// Logical tick at which the slot became residue; decay elapses from
    /// here.  Meaningless while `live`.
    retired_tick: u64,
    /// A scrubbed slot keeps its accounting but yields nothing.
    scrubbed: bool,
}

impl SwapSlot {
    /// The entity that swapped the page out.
    pub fn owner(&self) -> OwnerTag {
        self.owner
    }

    /// `true` while the owning process is alive.
    pub fn is_live(&self) -> bool {
        self.live
    }

    /// Heap page index the slot was swapped out from.
    pub fn page_index(&self) -> u64 {
        self.page_index
    }

    /// Uncompressed length of the slot's page.
    pub fn raw_len(&self) -> usize {
        self.raw_len
    }

    /// Compressed length of the slot (0 after a scrub).
    pub fn compressed_len(&self) -> usize {
        self.compressed.len()
    }

    /// `true` once a swap-aware sanitizer has destroyed the slot's data.
    pub fn is_scrubbed(&self) -> bool {
        self.scrubbed
    }
}

/// The compressed swap device: an append-only run of page slots with their
/// own ownership/residue tags and their own remanence decay state.
///
/// # Example
///
/// ```
/// use zynq_dram::swap::SwapStore;
/// use zynq_dram::OwnerTag;
///
/// let mut swap = SwapStore::new();
/// let owner = OwnerTag::new(1391);
/// swap.swap_out(owner, 0, &[0xAB; 4096]);
/// swap.retire_owner(owner);
/// assert_eq!(swap.residue_slots().count(), 1);
/// let page = swap.read_slot(0).unwrap();
/// assert!(page.iter().all(|&b| b == 0xAB));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SwapStore {
    slots: Vec<SwapSlot>,
    /// How swap residue decays over logical ticks — the store's *own* decay
    /// model: compressed slots sit in refreshed DRAM cells managed by the
    /// zram driver, so their retention differs from raw frame residue.
    remanence: RemanenceModel,
    seed: u64,
    tick: u64,
}

impl SwapStore {
    /// Creates an empty store (perfect retention, tick zero).
    pub fn new() -> Self {
        SwapStore::default()
    }

    /// Sets the swap store's remanence decay model (default
    /// [`RemanenceModel::Perfect`]).
    pub fn set_remanence(&mut self, model: RemanenceModel) {
        self.remanence = model;
    }

    /// Seeds the per-slot decay draws.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The active decay model.
    pub fn remanence(&self) -> RemanenceModel {
        self.remanence
    }

    /// Advances the store's logical decay clock by `ticks` (driven in
    /// lock-step with the DRAM device clock).
    pub fn advance(&mut self, ticks: u64) {
        self.tick += ticks;
    }

    /// The current logical decay tick.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Compresses `bytes` (one page, at most [`PAGE_SIZE`] bytes) into a new
    /// live slot owned by `owner`, returning the slot id.
    pub fn swap_out(&mut self, owner: OwnerTag, page_index: u64, bytes: &[u8]) -> usize {
        debug_assert!(bytes.len() as u64 <= PAGE_SIZE, "swap slots are page-sized");
        let slot = SwapSlot {
            owner,
            live: true,
            page_index,
            compressed: compress_page(bytes),
            raw_len: bytes.len(),
            retired_tick: 0,
            scrubbed: false,
        };
        self.slots.push(slot);
        self.slots.len() - 1
    }

    /// Marks every live slot owned by `owner` as residue, opening its decay
    /// epoch at the current tick.  Returns the number of slots retired.
    pub fn retire_owner(&mut self, owner: OwnerTag) -> usize {
        let tick = self.tick;
        let mut retired = 0;
        for slot in &mut self.slots {
            if slot.owner == owner && slot.live {
                slot.live = false;
                slot.retired_tick = tick;
                retired += 1;
            }
        }
        retired
    }

    /// Destroys the data of every slot owned by `owner` (live or residue):
    /// the swap-scrub sanitizers.  Returns `(slots_scrubbed, bytes_scrubbed)`
    /// where the byte count is the uncompressed page bytes destroyed.
    pub fn scrub_owner(&mut self, owner: OwnerTag) -> (usize, u64) {
        let mut slots = 0usize;
        let mut bytes = 0u64;
        for slot in &mut self.slots {
            if slot.owner == owner && !slot.scrubbed {
                slot.compressed.clear();
                slot.scrubbed = true;
                slots += 1;
                bytes += slot.raw_len as u64;
            }
        }
        (slots, bytes)
    }

    /// Total number of slots ever swapped out (scrubbed slots included).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// The slot with id `id`, if it exists.
    pub fn slot(&self, id: usize) -> Option<&SwapSlot> {
        self.slots.get(id)
    }

    /// Iterates over residue slots: owner terminated, data not yet scrubbed.
    /// This is the attacker's swap-store read surface.
    pub fn residue_slots(&self) -> impl Iterator<Item = (usize, &SwapSlot)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| !slot.live && !slot.scrubbed)
    }

    /// Decompresses slot `id` through the decay view.
    ///
    /// Returns `None` for unknown or scrubbed slots.  Residue slots decay:
    /// each *compressed* byte survives per the store's [`RemanenceModel`]
    /// (damaged token streams then decode to partial plaintext, the way a
    /// real compressed store amplifies cell loss).  Live slots and residue
    /// under [`RemanenceModel::Perfect`] read back bit-exactly.
    pub fn read_slot(&self, id: usize) -> Option<Vec<u8>> {
        let slot = self.slots.get(id)?;
        if slot.scrubbed {
            return None;
        }
        if slot.live || self.remanence.is_perfect() {
            return Some(decompress_page(&slot.compressed, slot.raw_len));
        }
        let curve = self
            .remanence
            .curve(self.tick.saturating_sub(slot.retired_tick));
        if curve.is_identity() {
            return Some(decompress_page(&slot.compressed, slot.raw_len));
        }
        // The slot id stands in for the stripe coordinate; the salt keeps
        // swap draws disjoint from the frame-residue draws at the same seed.
        let stripe = splitmix64(id as u64 ^ 0x5A5A_C0DE_0015_0CA7);
        let decayed: Vec<u8> = slot
            .compressed
            .iter()
            .enumerate()
            .map(|(i, &byte)| curve.apply(byte, cell_hash(self.seed, stripe, i as u64)))
            .collect();
        Some(decompress_page(&decayed, slot.raw_len))
    }

    /// Uncompressed residue bytes still recoverable from the store,
    /// optionally restricted to one owner: the sum over residue slots of the
    /// non-zero bytes their (decayed) decompression yields.
    pub fn residue_bytes(&self, owner: Option<OwnerTag>) -> u64 {
        self.residue_slots()
            .filter(|(_, slot)| owner.is_none_or(|o| slot.owner == o))
            .filter_map(|(id, _)| self.read_slot(id))
            .map(|page| page.iter().filter(|&&b| b != 0).count() as u64)
            .sum()
    }

    /// Compressed bytes currently held across all unscrubbed slots.
    pub fn compressed_bytes(&self) -> u64 {
        self.slots.iter().map(|s| s.compressed.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn run_tokens_round_trip_at_both_length_boundaries() {
        // The run token is `257 - run` for `2 <= run <= MAX_RUN`: the
        // checked conversion covers exactly `129..=255`.  Exercise both
        // ends, plus a run one past `MAX_RUN` (which must split).
        for run in [2usize, MAX_RUN, MAX_RUN + 1] {
            let data = vec![0xA5u8; run];
            let packed = compress_page(&data);
            let expected_token = u8::try_from(257 - run.min(MAX_RUN)).unwrap();
            assert_eq!(packed[0], expected_token, "run {run}");
            assert_eq!(decompress_page(&packed, run), data, "run {run}");
        }
    }

    #[test]
    fn literal_tokens_round_trip_at_both_length_boundaries() {
        // The literal token is `chunk - 1` for `1 <= chunk <= MAX_LITERAL`:
        // exactly `0..=127`.  A single literal, a full chunk and a chunk
        // that must split all round-trip.
        for len in [1usize, MAX_LITERAL, MAX_LITERAL + 1] {
            let data: Vec<u8> = (0..len)
                .map(|i| u8::try_from(i % 251).expect("residue below 251"))
                .collect();
            let packed = compress_page(&data);
            let expected_token = u8::try_from(len.min(MAX_LITERAL) - 1).unwrap();
            assert_eq!(packed[0], expected_token, "len {len}");
            assert_eq!(decompress_page(&packed, len), data, "len {len}");
        }
    }

    #[test]
    fn codec_round_trips_runs_and_literals() {
        for data in [
            vec![],
            vec![7u8],
            vec![0u8; 4096],
            vec![0xABu8; 300],
            (0..=255u8).collect::<Vec<u8>>(),
            [vec![1u8; 200], (0..100u8).collect(), vec![9u8; 3]].concat(),
        ] {
            let packed = compress_page(&data);
            assert_eq!(decompress_page(&packed, data.len()), data);
        }
    }

    #[test]
    fn runs_compress_well_and_literals_stay_bounded() {
        let zeros = compress_page(&vec![0u8; 4096]);
        assert!(zeros.len() <= 2 * 4096usize.div_ceil(MAX_RUN));
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| u8::try_from(i % 251).expect("residue below 251"))
            .collect();
        let packed = compress_page(&noise);
        // Worst case: one header byte per 128 literals.
        assert!(packed.len() <= noise.len() + noise.len().div_ceil(MAX_LITERAL));
    }

    #[test]
    fn truncated_streams_decode_with_zero_padding() {
        let data = vec![0x5Au8; 256];
        let packed = compress_page(&data);
        let cut = &packed[..packed.len() / 2];
        let out = decompress_page(cut, data.len());
        assert_eq!(out.len(), data.len());
        assert!(out.ends_with(&[0, 0, 0, 0]));
    }

    #[test]
    fn store_lifecycle_tracks_ownership_and_residue() {
        let mut swap = SwapStore::new();
        let victim = OwnerTag::new(1391);
        let other = OwnerTag::new(1392);
        let id = swap.swap_out(victim, 3, &[0xEE; 4096]);
        swap.swap_out(other, 0, &[0x11; 4096]);
        assert_eq!(swap.slot_count(), 2);
        assert_eq!(swap.residue_slots().count(), 0);
        assert!(swap.slot(id).unwrap().is_live());
        assert_eq!(swap.slot(id).unwrap().page_index(), 3);

        assert_eq!(swap.retire_owner(victim), 1);
        assert_eq!(swap.residue_slots().count(), 1);
        assert_eq!(swap.residue_bytes(Some(victim)), 4096);
        assert_eq!(swap.residue_bytes(Some(other)), 0);
        assert_eq!(swap.residue_bytes(None), 4096);
        let page = swap.read_slot(id).unwrap();
        assert!(page.iter().all(|&b| b == 0xEE));

        let (slots, bytes) = swap.scrub_owner(victim);
        assert_eq!((slots, bytes), (1, 4096));
        assert_eq!(swap.residue_slots().count(), 0);
        assert_eq!(swap.residue_bytes(None), 0);
        assert!(swap.read_slot(id).is_none());
        assert!(swap.slot(id).unwrap().is_scrubbed());
        // Scrubbing again is a no-op.
        assert_eq!(swap.scrub_owner(victim), (0, 0));
    }

    #[test]
    fn residue_decays_on_logical_ticks_only() {
        let mut swap = SwapStore::new();
        swap.set_remanence(RemanenceModel::Exponential { half_life_ticks: 1 });
        swap.set_seed(77);
        let owner = OwnerTag::new(9);
        let id = swap.swap_out(owner, 0, &[0xC3; 4096]);
        swap.retire_owner(owner);
        // No ticks elapsed: bit-exact.
        assert_eq!(swap.residue_bytes(None), 4096);
        swap.advance(32);
        let decayed = swap.residue_bytes(None);
        assert!(decayed < 4096, "residue must decay, got {decayed}");
        // Replayable: the same state reads the same bytes.
        assert_eq!(swap.residue_bytes(None), decayed);
        // Live slots never decay.
        let live = swap.swap_out(OwnerTag::new(10), 1, &[0xC3; 4096]);
        swap.advance(1000);
        assert!(swap.read_slot(live).unwrap().iter().all(|&b| b == 0xC3));
        let _ = id;
    }

    proptest! {
        #[test]
        fn prop_codec_round_trips(data in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let packed = compress_page(&data);
            prop_assert_eq!(decompress_page(&packed, data.len()), data);
        }

        #[test]
        fn prop_runs_shrink(byte in any::<u8>(), len in 1usize..4096) {
            let data = vec![byte; len];
            let packed = compress_page(&data);
            prop_assert!(packed.len() <= 2 * len.div_ceil(MAX_RUN));
        }
    }
}
