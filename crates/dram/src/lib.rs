//! # zynq-dram — physical DRAM model for the MSA reproduction
//!
//! This crate models the *local* DRAM attached to a Zynq UltraScale+ MPSoC
//! board (ZCU104 / ZCU102) at the level of detail needed by the memory
//! scraping attack (MSA) described in *"Memory Scraping Attack on Xilinx
//! FPGAs: Private Data Extraction from Terminated Processes"* (DATE 2024):
//!
//! - a byte-accurate, sparsely backed physical memory ([`Dram`]) whose
//!   backing store is **sharded by DRAM bank into contiguous arenas**: one
//!   lazily grown slab plus stripe-presence bitmap per bank, so stripe
//!   addressing is pure offset arithmetic.  Requests are split at bank
//!   boundaries and routed to the per-bank arenas; the bank-parallel
//!   [`Dram::scrub_banks_parallel`] / [`Dram::scrape_banks_parallel`] paths
//!   fan work across them while staying byte-identical to the sequential
//!   operations, and [`Dram::scrape_view`] borrows **zero-copy**
//!   [`ScrapeView`]s straight out of the slabs,
//! - the DDR address interleaving used by the memory controller
//!   ([`mapping::DdrMapping`]), so row/bank-granular sanitization schemes
//!   (RowClone, RowReset) can be modelled faithfully,
//! - **residue tracking**: every frame remembers which owner (process) last
//!   wrote it, so "memory residue of a terminated process" is a first-class,
//!   queryable concept,
//! - **analog remanence** ([`remanence::RemanenceModel`]): Pentimento-style
//!   per-cell decay of that residue over logical ticks, applied lazily as a
//!   pure view when non-owned residue is read — so the hot paths are
//!   untouched under the perfect (no-decay) model and bank-parallel scrapes
//!   stay byte-identical to sequential ones,
//! - end-of-process [`sanitize::SanitizePolicy`] implementations with a cost
//!   model, used by the defense-evaluation experiments.
//!
//! # Example
//!
//! ```
//! use zynq_dram::{Dram, DramConfig, OwnerTag, PhysAddr};
//!
//! # fn main() -> Result<(), zynq_dram::DramError> {
//! let mut dram = Dram::new(DramConfig::zcu104());
//! let base = dram.config().base();
//! let owner = OwnerTag::new(1391);
//!
//! dram.write_u32(base, 0xF7F5_F8FD, owner)?;
//! assert_eq!(dram.read_u32(base)?, 0xF7F5_F8FD);
//!
//! // The word persists (residue) until a sanitizer clears it.
//! assert!(dram.frames_owned_by(owner).count() > 0);
//! # Ok(())
//! # }
//! ```

pub mod addr;
pub mod config;
pub mod device;
pub mod error;
pub mod mapping;
#[cfg(feature = "race-check")]
pub mod racecheck;
pub mod remanence;
pub mod sanitize;
pub mod stats;
pub mod swap;
pub mod view;

pub use addr::{FrameNumber, PhysAddr, PAGE_SIZE};
pub use config::DramConfig;
pub use device::{Dram, OwnerTag};
pub use error::DramError;
pub use mapping::{BankChunk, DdrCoordinates, DdrMapping};
pub use remanence::{RemanenceModel, ResidueDecay};
pub use sanitize::{SanitizeCost, SanitizePolicy, ScrubReport};
pub use stats::DramStats;
pub use swap::{SwapSlot, SwapStore};
pub use view::ScrapeView;
