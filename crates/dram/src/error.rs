//! Error type for DRAM device operations.

use std::error::Error;
use std::fmt;

use crate::addr::PhysAddr;

/// Errors returned by [`Dram`](crate::Dram) accesses and sanitizer runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// The access touches addresses outside the configured DRAM window.
    OutOfRange {
        /// First address of the offending access.
        addr: PhysAddr,
        /// Length of the access in bytes.
        len: u64,
    },
    /// A multi-byte access was not naturally aligned.
    Misaligned {
        /// Address of the offending access.
        addr: PhysAddr,
        /// Required alignment in bytes.
        required: u64,
    },
    /// The requested access length overflows the address space.
    LengthOverflow {
        /// First address of the offending access.
        addr: PhysAddr,
        /// Length of the access in bytes.
        len: u64,
    },
    /// A mutation (fill / scrub) was requested over an empty range.
    ///
    /// Zero-length sanitizer runs are always caller bugs — typically an
    /// end-before-start range whose length underflowed to zero — so the
    /// device rejects them instead of silently recording a no-op scrub.
    EmptyRange {
        /// Address of the offending request.
        addr: PhysAddr,
    },
    /// An address handed to the DDR mapping lies outside the DRAM window, so
    /// it has no (rank, bank group, bank, row, column) decomposition.
    ///
    /// This is the typed form of what [`DdrMapping`](crate::DdrMapping) used
    /// to signal with a bare `None`: every mapping entry point (decompose,
    /// row/bank spans, bank-boundary splitting) now rejects out-of-window
    /// addresses with this same error.
    OutsideWindow {
        /// The address that has no DDR coordinates.
        addr: PhysAddr,
    },
    /// A bank-parallel operation was requested with a zero-sized worker pool.
    ///
    /// Like [`DramError::EmptyRange`], this is always a caller bug (usually a
    /// miscomputed `--jobs` value), so the device rejects it instead of
    /// silently degrading to a no-op.
    ZeroWorkers,
    /// A multi-snapshot read was requested with zero snapshots.
    ///
    /// Like [`DramError::ZeroWorkers`], a snapshot count of zero is always a
    /// caller bug — fusing zero reads has no defined result — so it is
    /// rejected instead of returning an empty dump.
    ZeroSnapshots,
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::OutOfRange { addr, len } => {
                write!(
                    f,
                    "access at {addr} of {len} bytes is outside the DRAM window"
                )
            }
            DramError::Misaligned { addr, required } => {
                write!(f, "access at {addr} is not {required}-byte aligned")
            }
            DramError::LengthOverflow { addr, len } => {
                write!(
                    f,
                    "access at {addr} of {len} bytes overflows the address space"
                )
            }
            DramError::EmptyRange { addr } => {
                write!(f, "zero-length range at {addr} (end precedes start?)")
            }
            DramError::OutsideWindow { addr } => {
                write!(
                    f,
                    "address {addr} is outside the DRAM window and has no DDR coordinates"
                )
            }
            DramError::ZeroWorkers => {
                write!(f, "bank-parallel operation requested with zero workers")
            }
            DramError::ZeroSnapshots => {
                write!(f, "multi-snapshot read requested with zero snapshots")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = DramError::OutOfRange {
            addr: PhysAddr::new(0x10),
            len: 4,
        };
        assert!(e.to_string().contains("outside the DRAM window"));
        let e = DramError::Misaligned {
            addr: PhysAddr::new(0x11),
            required: 4,
        };
        assert!(e.to_string().contains("not 4-byte aligned"));
        let e = DramError::LengthOverflow {
            addr: PhysAddr::new(u64::MAX),
            len: 4,
        };
        assert!(e.to_string().contains("overflows"));
        let e = DramError::EmptyRange {
            addr: PhysAddr::new(0x6_0000_0000),
        };
        assert!(e.to_string().contains("zero-length"));
        let e = DramError::OutsideWindow {
            addr: PhysAddr::new(0x10),
        };
        assert!(e.to_string().contains("no DDR coordinates"));
        assert!(DramError::ZeroWorkers.to_string().contains("zero workers"));
        assert!(DramError::ZeroSnapshots
            .to_string()
            .contains("zero snapshots"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
