//! Error type for DRAM device operations.

use std::error::Error;
use std::fmt;

use crate::addr::PhysAddr;

/// Errors returned by [`Dram`](crate::Dram) accesses and sanitizer runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DramError {
    /// The access touches addresses outside the configured DRAM window.
    OutOfRange {
        /// First address of the offending access.
        addr: PhysAddr,
        /// Length of the access in bytes.
        len: u64,
    },
    /// A multi-byte access was not naturally aligned.
    Misaligned {
        /// Address of the offending access.
        addr: PhysAddr,
        /// Required alignment in bytes.
        required: u64,
    },
    /// The requested access length overflows the address space.
    LengthOverflow {
        /// First address of the offending access.
        addr: PhysAddr,
        /// Length of the access in bytes.
        len: u64,
    },
    /// A mutation (fill / scrub) was requested over an empty range.
    ///
    /// Zero-length sanitizer runs are always caller bugs — typically an
    /// end-before-start range whose length underflowed to zero — so the
    /// device rejects them instead of silently recording a no-op scrub.
    EmptyRange {
        /// Address of the offending request.
        addr: PhysAddr,
    },
}

impl fmt::Display for DramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DramError::OutOfRange { addr, len } => {
                write!(
                    f,
                    "access at {addr} of {len} bytes is outside the DRAM window"
                )
            }
            DramError::Misaligned { addr, required } => {
                write!(f, "access at {addr} is not {required}-byte aligned")
            }
            DramError::LengthOverflow { addr, len } => {
                write!(
                    f,
                    "access at {addr} of {len} bytes overflows the address space"
                )
            }
            DramError::EmptyRange { addr } => {
                write!(f, "zero-length range at {addr} (end precedes start?)")
            }
        }
    }
}

impl Error for DramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = DramError::OutOfRange {
            addr: PhysAddr::new(0x10),
            len: 4,
        };
        assert!(e.to_string().contains("outside the DRAM window"));
        let e = DramError::Misaligned {
            addr: PhysAddr::new(0x11),
            required: 4,
        };
        assert!(e.to_string().contains("not 4-byte aligned"));
        let e = DramError::LengthOverflow {
            addr: PhysAddr::new(u64::MAX),
            len: 4,
        };
        assert!(e.to_string().contains("overflows"));
        let e = DramError::EmptyRange {
            addr: PhysAddr::new(0x6_0000_0000),
        };
        assert!(e.to_string().contains("zero-length"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DramError>();
    }
}
