//! DRAM access statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`Dram`](crate::Dram) device.
///
/// The sanitization cost model (TAB-B in the experiment index) is built on the
/// distinction between *owner writes* (normal traffic) and *scrub writes*
/// (sanitizer traffic): a policy's overhead is the scrub traffic it generates.
/// The byte/op counters are **fan-out independent**: a bank-parallel scrub or
/// scrape records exactly the same bytes and operation count as its
/// sequential twin, so campaign results stay worker-count independent.  The
/// only parallel-specific fields are the telemetry counters
/// ([`DramStats::parallel_scrub_ops`], [`DramStats::peak_scrub_workers`]),
/// which report how much work actually fanned out across bank shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    bytes_written: u64,
    bytes_scrubbed: u64,
    write_ops: u64,
    scrub_ops: u64,
    parallel_scrub_ops: u64,
    peak_scrub_workers: u64,
}

impl DramStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        DramStats::default()
    }

    /// Total bytes written by owners (non-scrub traffic).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes cleared by sanitizers.
    pub fn bytes_scrubbed(&self) -> u64 {
        self.bytes_scrubbed
    }

    /// Number of owner write operations.
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Number of scrub operations.
    pub fn scrub_ops(&self) -> u64 {
        self.scrub_ops
    }

    /// Number of scrub operations that actually fanned out over more than one
    /// bank-shard worker (telemetry; excluded from equivalence comparisons of
    /// the byte/op counters above).
    pub fn parallel_scrub_ops(&self) -> u64 {
        self.parallel_scrub_ops
    }

    /// Largest worker pool any bank-parallel scrub on this device used.
    pub fn peak_scrub_workers(&self) -> u64 {
        self.peak_scrub_workers
    }

    /// The fan-out-independent projection of the counters: everything that
    /// must be identical between the flat, sharded-sequential and
    /// bank-parallel execution paths.
    pub fn deterministic_view(&self) -> (u64, u64, u64, u64) {
        (
            self.bytes_written,
            self.bytes_scrubbed,
            self.write_ops,
            self.scrub_ops,
        )
    }

    pub(crate) fn record_write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
        self.write_ops += 1;
    }

    pub(crate) fn record_scrub(&mut self, bytes: u64) {
        self.bytes_scrubbed += bytes;
        self.scrub_ops += 1;
    }

    pub(crate) fn record_parallel_scrub(&mut self, workers: usize) {
        self.parallel_scrub_ops += 1;
        self.peak_scrub_workers = self.peak_scrub_workers.max(workers as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = DramStats::new();
        assert_eq!(s.bytes_written(), 0);
        assert_eq!(s.bytes_scrubbed(), 0);
        assert_eq!(s.write_ops(), 0);
        assert_eq!(s.scrub_ops(), 0);
    }

    #[test]
    fn record_accumulates() {
        let mut s = DramStats::new();
        s.record_write(10);
        s.record_write(5);
        s.record_scrub(3);
        assert_eq!(s.bytes_written(), 15);
        assert_eq!(s.write_ops(), 2);
        assert_eq!(s.bytes_scrubbed(), 3);
        assert_eq!(s.scrub_ops(), 1);
    }

    #[test]
    fn parallel_telemetry_is_separate_from_the_deterministic_view() {
        let mut s = DramStats::new();
        s.record_scrub(100);
        let view_before = s.deterministic_view();
        s.record_parallel_scrub(4);
        s.record_parallel_scrub(2);
        assert_eq!(s.parallel_scrub_ops(), 2);
        assert_eq!(s.peak_scrub_workers(), 4);
        // Fan-out telemetry never moves the deterministic counters.
        assert_eq!(s.deterministic_view(), view_before);
        assert_eq!(s.deterministic_view(), (0, 100, 0, 1));
    }
}
