//! DRAM access statistics.

use serde::{Deserialize, Serialize};

/// Counters accumulated by a [`Dram`](crate::Dram) device.
///
/// The sanitization cost model (TAB-B in the experiment index) is built on the
/// distinction between *owner writes* (normal traffic) and *scrub writes*
/// (sanitizer traffic): a policy's overhead is the scrub traffic it generates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    bytes_written: u64,
    bytes_scrubbed: u64,
    write_ops: u64,
    scrub_ops: u64,
}

impl DramStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        DramStats::default()
    }

    /// Total bytes written by owners (non-scrub traffic).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes cleared by sanitizers.
    pub fn bytes_scrubbed(&self) -> u64 {
        self.bytes_scrubbed
    }

    /// Number of owner write operations.
    pub fn write_ops(&self) -> u64 {
        self.write_ops
    }

    /// Number of scrub operations.
    pub fn scrub_ops(&self) -> u64 {
        self.scrub_ops
    }

    pub(crate) fn record_write(&mut self, bytes: u64) {
        self.bytes_written += bytes;
        self.write_ops += 1;
    }

    pub(crate) fn record_scrub(&mut self, bytes: u64) {
        self.bytes_scrubbed += bytes;
        self.scrub_ops += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero() {
        let s = DramStats::new();
        assert_eq!(s.bytes_written(), 0);
        assert_eq!(s.bytes_scrubbed(), 0);
        assert_eq!(s.write_ops(), 0);
        assert_eq!(s.scrub_ops(), 0);
    }

    #[test]
    fn record_accumulates() {
        let mut s = DramStats::new();
        s.record_write(10);
        s.record_write(5);
        s.record_scrub(3);
        assert_eq!(s.bytes_written(), 15);
        assert_eq!(s.write_ops(), 2);
        assert_eq!(s.bytes_scrubbed(), 3);
        assert_eq!(s.scrub_ops(), 1);
    }
}
