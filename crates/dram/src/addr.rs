//! Physical address and frame-number newtypes.
//!
//! The attack reasons about *physical* DRAM locations (the values produced by
//! the paper's `virtual_to_physical` helper and consumed by `devmem`), so the
//! address types live in the DRAM crate and are re-used by every layer above.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// Size of a physical frame / virtual page in bytes (4 KiB, the granule used
/// by PetaLinux on the Cortex-A53 cluster of the ZCU104).
pub const PAGE_SIZE: u64 = 4096;

/// A physical address in the board's DRAM address map.
///
/// Printed in hexadecimal, matching the `devmem 0x61c6d730` style output the
/// paper shows in Figures 8 and 10.
///
/// # Example
///
/// ```
/// use zynq_dram::PhysAddr;
///
/// let pa = PhysAddr::new(0x61c6_d730);
/// assert_eq!(format!("{pa}"), "0x61c6d730");
/// assert_eq!(pa.frame_number().as_u64(), 0x61c6_d730 / 4096);
/// assert_eq!(pa.page_offset(), 0x730);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the frame containing this address.
    pub const fn frame_number(self) -> FrameNumber {
        FrameNumber(self.0 / PAGE_SIZE)
    }

    /// Returns the offset of this address within its frame.
    pub const fn page_offset(self) -> u64 {
        self.0 % PAGE_SIZE
    }

    /// Rounds the address down to the containing frame boundary.
    pub const fn align_down(self) -> PhysAddr {
        PhysAddr(self.0 - self.0 % PAGE_SIZE)
    }

    /// Rounds the address up to the next frame boundary (identity if already
    /// aligned).
    pub const fn align_up(self) -> PhysAddr {
        let rem = self.0 % PAGE_SIZE;
        if rem == 0 {
            self
        } else {
            PhysAddr(self.0 + (PAGE_SIZE - rem))
        }
    }

    /// Returns `true` if the address is frame-aligned.
    pub const fn is_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Checked addition of a byte offset.
    pub fn checked_add(self, offset: u64) -> Option<PhysAddr> {
        self.0.checked_add(offset).map(PhysAddr)
    }

    /// Byte distance from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn offset_from(self, other: PhysAddr) -> u64 {
        self.0
            .checked_sub(other.0)
            .expect("offset_from: other is above self")
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl From<PhysAddr> for u64 {
    fn from(pa: PhysAddr) -> Self {
        pa.0
    }
}

impl Add<u64> for PhysAddr {
    type Output = PhysAddr;

    fn add(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for PhysAddr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for PhysAddr {
    type Output = PhysAddr;

    fn sub(self, rhs: u64) -> PhysAddr {
        PhysAddr(self.0 - rhs)
    }
}

/// A physical frame number (physical address divided by [`PAGE_SIZE`]).
///
/// Frame numbers are what Linux's `/proc/<pid>/pagemap` exposes as PFNs; the
/// attacker-side translator reconstructs physical addresses from them.
///
/// # Example
///
/// ```
/// use zynq_dram::{FrameNumber, PhysAddr};
///
/// let frame = FrameNumber::new(0x61c6d);
/// assert_eq!(frame.base_address(), PhysAddr::new(0x61c6d000));
/// assert_eq!(frame.next().as_u64(), 0x61c6e);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FrameNumber(u64);

impl FrameNumber {
    /// Creates a frame number from a raw value.
    pub const fn new(raw: u64) -> Self {
        FrameNumber(raw)
    }

    /// Returns the raw frame number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the physical address of the first byte of the frame.
    pub const fn base_address(self) -> PhysAddr {
        PhysAddr(self.0 * PAGE_SIZE)
    }

    /// Returns the frame immediately after this one.
    pub const fn next(self) -> FrameNumber {
        FrameNumber(self.0 + 1)
    }
}

impl fmt::Display for FrameNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

impl From<u64> for FrameNumber {
    fn from(raw: u64) -> Self {
        FrameNumber(raw)
    }
}

impl From<FrameNumber> for u64 {
    fn from(f: FrameNumber) -> Self {
        f.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn phys_addr_display_is_devmem_style_hex() {
        assert_eq!(PhysAddr::new(0x61c6_d730).to_string(), "0x61c6d730");
        assert_eq!(format!("{:x}", PhysAddr::new(0xABCD)), "abcd");
        assert_eq!(format!("{:X}", PhysAddr::new(0xabcd)), "ABCD");
    }

    #[test]
    fn frame_and_offset_decomposition() {
        let pa = PhysAddr::new(3 * PAGE_SIZE + 17);
        assert_eq!(pa.frame_number(), FrameNumber::new(3));
        assert_eq!(pa.page_offset(), 17);
        assert_eq!(pa.frame_number().base_address() + pa.page_offset(), pa);
    }

    #[test]
    fn alignment_helpers() {
        let pa = PhysAddr::new(PAGE_SIZE + 1);
        assert_eq!(pa.align_down(), PhysAddr::new(PAGE_SIZE));
        assert_eq!(pa.align_up(), PhysAddr::new(2 * PAGE_SIZE));
        let aligned = PhysAddr::new(2 * PAGE_SIZE);
        assert!(aligned.is_aligned());
        assert_eq!(aligned.align_up(), aligned);
        assert_eq!(aligned.align_down(), aligned);
    }

    #[test]
    fn arithmetic_and_conversions() {
        let pa = PhysAddr::new(0x1000);
        assert_eq!((pa + 0x730).as_u64(), 0x1730);
        assert_eq!((pa + 0x730).offset_from(pa), 0x730);
        assert_eq!(PhysAddr::from(7u64).as_u64(), 7);
        assert_eq!(u64::from(PhysAddr::new(9)), 9);
        let mut pa2 = pa;
        pa2 += 8;
        assert_eq!(pa2, PhysAddr::new(0x1008));
        assert_eq!(pa2 - 8, pa);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(PhysAddr::new(u64::MAX).checked_add(1).is_none());
        assert_eq!(PhysAddr::new(10).checked_add(5), Some(PhysAddr::new(15)));
    }

    #[test]
    #[should_panic(expected = "offset_from")]
    fn offset_from_panics_when_negative() {
        let _ = PhysAddr::new(0).offset_from(PhysAddr::new(1));
    }

    #[test]
    fn frame_number_roundtrip() {
        let frame = FrameNumber::new(42);
        assert_eq!(frame.base_address().frame_number(), frame);
        assert_eq!(frame.next(), FrameNumber::new(43));
        assert_eq!(frame.to_string(), "pfn:0x2a");
        assert_eq!(u64::from(FrameNumber::from(5u64)), 5);
    }

    proptest! {
        #[test]
        fn prop_frame_offset_decomposition_roundtrips(raw in any::<u64>()) {
            // frame * PAGE_SIZE + offset reconstructs the address exactly.
            let pa = PhysAddr::new(raw);
            prop_assert_eq!(
                pa.frame_number().base_address() + pa.page_offset(),
                pa
            );
            prop_assert!(pa.page_offset() < PAGE_SIZE);
            prop_assert_eq!(pa.frame_number().base_address().page_offset(), 0);
        }

        #[test]
        fn prop_alignment_brackets_the_address(raw in 0u64..(u64::MAX - PAGE_SIZE)) {
            let pa = PhysAddr::new(raw);
            let down = pa.align_down();
            let up = pa.align_up();
            prop_assert!(down.is_aligned());
            prop_assert!(up.is_aligned());
            prop_assert!(down <= pa);
            prop_assert!(pa <= up);
            prop_assert!(up.as_u64() - down.as_u64() <= PAGE_SIZE);
            prop_assert_eq!(down == up, pa.is_aligned());
            prop_assert_eq!(down, pa.frame_number().base_address());
        }

        #[test]
        fn prop_addition_and_offset_from_are_inverses(base in 0u64..(1u64 << 48), delta in 0u64..(1u64 << 16)) {
            let pa = PhysAddr::new(base);
            prop_assert_eq!((pa + delta).offset_from(pa), delta);
            prop_assert_eq!(pa.checked_add(delta), Some(pa + delta));
            prop_assert_eq!((pa + delta) - delta, pa);
        }

        #[test]
        fn prop_frame_base_is_monotone_and_page_strided(raw in 0u64..(u64::MAX / PAGE_SIZE)) {
            let frame = FrameNumber::new(raw);
            prop_assert_eq!(frame.base_address().frame_number(), frame);
            prop_assert_eq!(
                frame.next().base_address().offset_from(frame.base_address()),
                PAGE_SIZE
            );
        }
    }
}
