//! The DRAM device: byte-accurate storage plus residue (ownership) tracking.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{FrameNumber, PhysAddr, PAGE_SIZE};
use crate::config::DramConfig;
use crate::error::DramError;
use crate::stats::DramStats;

/// Identifies the software entity (in practice: a process id) that owns the
/// data stored in a frame.
///
/// The tag is how the simulator models *memory residue*: when a process
/// terminates without sanitization its frames keep their bytes and keep their
/// tag, but the tag is marked "dead" — exactly the state the memory scraping
/// attack exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OwnerTag(u32);

impl OwnerTag {
    /// Creates an owner tag from a raw identifier (e.g. a pid).
    pub const fn new(raw: u32) -> Self {
        OwnerTag(raw)
    }

    /// Returns the raw identifier.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OwnerTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner:{}", self.0)
    }
}

impl From<u32> for OwnerTag {
    fn from(raw: u32) -> Self {
        OwnerTag(raw)
    }
}

/// Ownership state of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameOwnership {
    /// The entity that last wrote the frame.
    pub owner: OwnerTag,
    /// `true` while the owning process is alive; `false` once it has
    /// terminated (the frame then holds *residue*).
    pub live: bool,
}

/// The simulated DRAM device.
///
/// Storage is sparse: frames are materialized on first write, so a 2 GiB
/// window costs memory proportional to the bytes actually touched.
///
/// # Example
///
/// ```
/// use zynq_dram::{Dram, DramConfig, OwnerTag};
///
/// # fn main() -> Result<(), zynq_dram::DramError> {
/// let mut dram = Dram::new(DramConfig::tiny_for_tests());
/// let addr = dram.config().base() + 0x40;
/// dram.write_u64(addr, 0xDEAD_BEEF_F00D_CAFE, OwnerTag::new(7))?;
/// assert_eq!(dram.read_u64(addr)?, 0xDEAD_BEEF_F00D_CAFE);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    frames: HashMap<u64, Box<[u8]>>,
    ownership: HashMap<u64, FrameOwnership>,
    stats: DramStats,
}

impl Dram {
    /// Creates an empty (all-zero) DRAM with the given configuration.
    pub fn new(config: DramConfig) -> Self {
        Dram {
            config,
            frames: HashMap::new(),
            ownership: HashMap::new(),
            stats: DramStats::default(),
        }
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets the access statistics without touching memory contents.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    fn frame_index(&self, addr: PhysAddr) -> u64 {
        addr.offset_from(self.config.base()) / PAGE_SIZE
    }

    fn check_range(&self, addr: PhysAddr, len: u64) -> Result<(), DramError> {
        if len > 0 && addr.checked_add(len - 1).is_none() {
            return Err(DramError::LengthOverflow { addr, len });
        }
        if !self.config.contains_range(addr, len.max(1)) {
            return Err(DramError::OutOfRange { addr, len });
        }
        Ok(())
    }

    fn check_aligned(&self, addr: PhysAddr, align: u64) -> Result<(), DramError> {
        if !addr.as_u64().is_multiple_of(align) {
            return Err(DramError::Misaligned {
                addr,
                required: align,
            });
        }
        Ok(())
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the address is outside the window.
    pub fn read_u8(&self, addr: PhysAddr) -> Result<u8, DramError> {
        self.check_range(addr, 1)?;
        let idx = self.frame_index(addr);
        let offset = addr.page_offset() as usize;
        Ok(self.frames.get(&idx).map(|f| f[offset]).unwrap_or(0))
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Unmaterialized frames read as zero, matching DRAM that has been
    /// initialized once at power-on.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if any byte falls outside the window.
    pub fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), DramError> {
        self.check_range(addr, buf.len() as u64)?;
        // One frame lookup per touched page, bulk-copying page-sized chunks.
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let a = addr + cursor as u64;
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE as usize - offset).min(buf.len() - cursor);
            let dst = &mut buf[cursor..cursor + chunk];
            match self.frames.get(&self.frame_index(a)) {
                Some(frame) => dst.copy_from_slice(&frame[offset..offset + chunk]),
                None => dst.fill(0),
            }
            cursor += chunk;
        }
        Ok(())
    }

    /// Reads a naturally aligned little-endian 32-bit word (the access
    /// `devmem <addr>` performs).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] if `addr` is not 4-byte aligned and
    /// [`DramError::OutOfRange`] if the word crosses the window boundary.
    pub fn read_u32(&self, addr: PhysAddr) -> Result<u32, DramError> {
        self.check_aligned(addr, 4)?;
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Reads a naturally aligned little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] if `addr` is not 8-byte aligned and
    /// [`DramError::OutOfRange`] if the word crosses the window boundary.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, DramError> {
        self.check_aligned(addr, 8)?;
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    fn frame_mut(&mut self, idx: u64) -> &mut Box<[u8]> {
        self.frames
            .entry(idx)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    fn tag_frame(&mut self, idx: u64, owner: OwnerTag) {
        self.ownership
            .insert(idx, FrameOwnership { owner, live: true });
    }

    /// Writes a single byte on behalf of `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the address is outside the window.
    pub fn write_u8(
        &mut self,
        addr: PhysAddr,
        value: u8,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_range(addr, 1)?;
        let idx = self.frame_index(addr);
        let offset = addr.page_offset() as usize;
        self.frame_mut(idx)[offset] = value;
        self.tag_frame(idx, owner);
        self.stats.record_write(1);
        Ok(())
    }

    /// Writes `data` starting at `addr` on behalf of `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if any byte falls outside the window.
    pub fn write_bytes(
        &mut self,
        addr: PhysAddr,
        data: &[u8],
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_range(addr, data.len() as u64)?;
        // One frame materialization + ownership tag per touched page.
        let mut cursor = 0usize;
        while cursor < data.len() {
            let a = addr + cursor as u64;
            let idx = self.frame_index(a);
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE as usize - offset).min(data.len() - cursor);
            self.frame_mut(idx)[offset..offset + chunk]
                .copy_from_slice(&data[cursor..cursor + chunk]);
            self.tag_frame(idx, owner);
            cursor += chunk;
        }
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    /// Writes a naturally aligned little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] or [`DramError::OutOfRange`] under
    /// the same conditions as [`Dram::read_u32`].
    pub fn write_u32(
        &mut self,
        addr: PhysAddr,
        value: u32,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_aligned(addr, 4)?;
        self.write_bytes(addr, &value.to_le_bytes(), owner)
    }

    /// Writes a naturally aligned little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] or [`DramError::OutOfRange`] under
    /// the same conditions as [`Dram::read_u64`].
    pub fn write_u64(
        &mut self,
        addr: PhysAddr,
        value: u64,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_aligned(addr, 8)?;
        self.write_bytes(addr, &value.to_le_bytes(), owner)
    }

    /// Fills `len` bytes starting at `addr` with `byte` on behalf of `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the range leaves the window and
    /// [`DramError::EmptyRange`] when `len` is zero (almost always an
    /// end-before-start range computed by the caller).
    pub fn fill(
        &mut self,
        addr: PhysAddr,
        len: u64,
        byte: u8,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        if len == 0 {
            return Err(DramError::EmptyRange { addr });
        }
        self.check_range(addr, len)?;
        let mut cursor = 0u64;
        while cursor < len {
            let a = addr + cursor;
            let idx = self.frame_index(a);
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE - offset as u64).min(len - cursor) as usize;
            self.frame_mut(idx)[offset..offset + chunk].fill(byte);
            self.tag_frame(idx, owner);
            cursor += chunk as u64;
        }
        self.stats.record_write(len);
        Ok(())
    }

    /// Zeroes `len` bytes starting at `addr` **as a sanitizer** (the write is
    /// counted as scrubbing, not as an owner write, and the ownership record
    /// of frames left entirely zero is removed).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the range leaves the window and
    /// [`DramError::EmptyRange`] when `len` is zero — a sanitizer asked to
    /// scrub nothing is a caller bug (typically an end-before-start span) and
    /// must not be recorded as a successful scrub.
    pub fn scrub_range(&mut self, addr: PhysAddr, len: u64) -> Result<(), DramError> {
        if len == 0 {
            return Err(DramError::EmptyRange { addr });
        }
        self.check_range(addr, len)?;
        // One pass, page-sized chunks: zero the covered slice of each
        // materialized frame, then drop the ownership record of every frame
        // left entirely zero (row- or bank-granular sanitizers clear a frame
        // across several sub-page calls; the attribution should disappear
        // once nothing of the owner's data remains).
        let mut cursor = 0u64;
        while cursor < len {
            let a = addr + cursor;
            let idx = self.frame_index(a);
            let offset = a.page_offset() as usize;
            let chunk = (PAGE_SIZE - offset as u64).min(len - cursor) as usize;
            let empty = match self.frames.get_mut(&idx) {
                Some(frame) => {
                    frame[offset..offset + chunk].fill(0);
                    // A fully covered frame is empty by construction; a
                    // partially covered one must be scanned.
                    chunk == PAGE_SIZE as usize || frame.iter().all(|&b| b == 0)
                }
                None => true,
            };
            if empty {
                self.ownership.remove(&idx);
            }
            cursor += chunk as u64;
        }
        self.stats.record_scrub(len);
        Ok(())
    }

    /// Marks every live frame owned by `owner` as dead (terminated-process
    /// residue) without clearing any data.
    ///
    /// Returns the number of frames transitioned to the residue state.
    pub fn retire_owner(&mut self, owner: OwnerTag) -> usize {
        let mut count = 0;
        for record in self.ownership.values_mut() {
            if record.owner == owner && record.live {
                record.live = false;
                count += 1;
            }
        }
        count
    }

    /// Returns the ownership record of a frame, if any entity has written it.
    pub fn frame_ownership(&self, frame: FrameNumber) -> Option<FrameOwnership> {
        if !self.config.contains_frame(frame) {
            return None;
        }
        let idx = frame.as_u64() - self.config.first_frame().as_u64();
        self.ownership.get(&idx).copied()
    }

    /// Iterates over the frames currently attributed to `owner`
    /// (live or residue).
    pub fn frames_owned_by(&self, owner: OwnerTag) -> impl Iterator<Item = FrameNumber> + '_ {
        let first = self.config.first_frame().as_u64();
        self.ownership
            .iter()
            .filter(move |(_, rec)| rec.owner == owner)
            .map(move |(idx, _)| FrameNumber::new(first + idx))
    }

    /// Iterates over all residue frames: frames whose owner has terminated
    /// but whose data has not been sanitized.
    pub fn residue_frames(&self) -> impl Iterator<Item = (FrameNumber, OwnerTag)> + '_ {
        let first = self.config.first_frame().as_u64();
        self.ownership
            .iter()
            .filter(|(_, rec)| !rec.live)
            .map(move |(idx, rec)| (FrameNumber::new(first + idx), rec.owner))
    }

    /// Total number of bytes that differ from zero in residue frames.
    ///
    /// This is the quantity the defense experiments report as "recoverable
    /// residue".
    pub fn residue_bytes(&self) -> u64 {
        self.ownership
            .iter()
            .filter(|(_, rec)| !rec.live)
            .map(|(idx, _)| {
                self.frames
                    .get(idx)
                    .map(|f| f.iter().filter(|&&b| b != 0).count() as u64)
                    .unwrap_or(0)
            })
            .sum()
    }

    /// Number of frames that have been materialized (written at least once).
    pub fn materialized_frames(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::tiny_for_tests())
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let d = dram();
        let base = d.config().base();
        assert_eq!(d.read_u8(base).unwrap(), 0);
        assert_eq!(d.read_u32(base).unwrap(), 0);
        assert_eq!(d.read_u64(base).unwrap(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = dram();
        let base = d.config().base();
        let owner = OwnerTag::new(1391);
        d.write_u32(base + 4, 0xF7F5_F8FD, owner).unwrap();
        assert_eq!(d.read_u32(base + 4).unwrap(), 0xF7F5_F8FD);
        d.write_u64(base + 8, 0x0102_0304_0506_0708, owner).unwrap();
        assert_eq!(d.read_u64(base + 8).unwrap(), 0x0102_0304_0506_0708);
        d.write_u8(base, 0xAB, owner).unwrap();
        assert_eq!(d.read_u8(base).unwrap(), 0xAB);
    }

    #[test]
    fn bytes_roundtrip_across_frame_boundary() {
        let mut d = dram();
        let owner = OwnerTag::new(1);
        let addr = d.config().base() + PAGE_SIZE - 3;
        let data = [1u8, 2, 3, 4, 5, 6, 7];
        d.write_bytes(addr, &data, owner).unwrap();
        let mut back = [0u8; 7];
        d.read_bytes(addr, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(d.materialized_frames(), 2);
    }

    #[test]
    fn misaligned_word_access_is_rejected() {
        let mut d = dram();
        let base = d.config().base();
        assert!(matches!(
            d.read_u32(base + 1),
            Err(DramError::Misaligned { required: 4, .. })
        ));
        assert!(matches!(
            d.write_u64(base + 4, 0, OwnerTag::new(1)),
            Err(DramError::Misaligned { required: 8, .. })
        ));
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let mut d = dram();
        let below = PhysAddr::new(0x1000);
        assert!(matches!(
            d.read_u8(below),
            Err(DramError::OutOfRange { .. })
        ));
        let end = d.config().end();
        assert!(matches!(
            d.write_u32(end, 1, OwnerTag::new(1)),
            Err(DramError::OutOfRange { .. })
        ));
        // Access straddling the end.
        let mut buf = [0u8; 8];
        assert!(d.read_bytes(end - 4, &mut buf).is_err());
    }

    #[test]
    fn ownership_tracking_and_retire() {
        let mut d = dram();
        let owner = OwnerTag::new(1391);
        let other = OwnerTag::new(2000);
        let base = d.config().base();
        d.write_bytes(base, &[0xAA; 64], owner).unwrap();
        d.write_bytes(base + PAGE_SIZE, &[0xBB; 64], other).unwrap();

        assert_eq!(d.frames_owned_by(owner).count(), 1);
        let rec = d.frame_ownership(base.frame_number()).unwrap();
        assert_eq!(rec.owner, owner);
        assert!(rec.live);

        assert_eq!(d.retire_owner(owner), 1);
        let rec = d.frame_ownership(base.frame_number()).unwrap();
        assert!(!rec.live);
        // Residue only reports the dead owner's frames.
        let residues: Vec<_> = d.residue_frames().collect();
        assert_eq!(residues.len(), 1);
        assert_eq!(residues[0].1, owner);
        assert_eq!(d.residue_bytes(), 64);
    }

    #[test]
    fn retire_is_idempotent_and_scoped() {
        let mut d = dram();
        let owner = OwnerTag::new(5);
        d.write_u8(d.config().base(), 1, owner).unwrap();
        assert_eq!(d.retire_owner(owner), 1);
        assert_eq!(d.retire_owner(owner), 0);
        assert_eq!(d.retire_owner(OwnerTag::new(99)), 0);
    }

    #[test]
    fn scrub_clears_data_and_ownership() {
        let mut d = dram();
        let owner = OwnerTag::new(1391);
        let base = d.config().base();
        d.fill(base, 2 * PAGE_SIZE, 0xFF, owner).unwrap();
        d.retire_owner(owner);
        assert!(d.residue_bytes() > 0);

        d.scrub_range(base, 2 * PAGE_SIZE).unwrap();
        assert_eq!(d.read_u8(base).unwrap(), 0);
        assert_eq!(d.read_u8(base + 2 * PAGE_SIZE - 1).unwrap(), 0);
        assert_eq!(d.residue_bytes(), 0);
        assert!(d.frame_ownership(base.frame_number()).is_none());
    }

    #[test]
    fn partial_scrub_keeps_frame_ownership() {
        let mut d = dram();
        let owner = OwnerTag::new(7);
        let base = d.config().base();
        d.fill(base, PAGE_SIZE, 0xFF, owner).unwrap();
        // Scrub only half the frame: data cleared, but the frame is still
        // attributed (it still holds the other half of the owner's bytes).
        d.scrub_range(base, PAGE_SIZE / 2).unwrap();
        assert_eq!(d.read_u8(base).unwrap(), 0);
        assert_eq!(d.read_u8(base + PAGE_SIZE - 1).unwrap(), 0xFF);
        assert!(d.frame_ownership(base.frame_number()).is_some());
    }

    #[test]
    fn zero_length_fill_and_scrub_are_rejected() {
        let mut d = dram();
        let base = d.config().base();
        assert!(matches!(
            d.fill(base, 0, 0xFF, OwnerTag::new(1)),
            Err(DramError::EmptyRange { .. })
        ));
        assert!(matches!(
            d.scrub_range(base, 0),
            Err(DramError::EmptyRange { .. })
        ));
        // Nothing was recorded for the rejected calls.
        assert_eq!(d.stats().bytes_written(), 0);
        assert_eq!(d.stats().bytes_scrubbed(), 0);
        assert_eq!(d.materialized_frames(), 0);
    }

    #[test]
    fn end_before_start_ranges_are_rejected() {
        // A caller computing `len = end - start` with wrapped arithmetic gets
        // a huge length; the window check must reject it rather than scrub an
        // unintended span.
        let mut d = dram();
        let start = d.config().base() + PAGE_SIZE;
        let wrapped = (0u64).wrapping_sub(PAGE_SIZE); // "end - start" underflow
        assert!(matches!(
            d.scrub_range(start, wrapped),
            Err(DramError::OutOfRange { .. }) | Err(DramError::LengthOverflow { .. })
        ));
        assert!(matches!(
            d.fill(start, wrapped, 0xAB, OwnerTag::new(1)),
            Err(DramError::OutOfRange { .. }) | Err(DramError::LengthOverflow { .. })
        ));
        // A length that overflows the address space itself.
        assert!(matches!(
            d.scrub_range(start, u64::MAX),
            Err(DramError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn empty_bulk_copies_remain_harmless_noops() {
        // The bulk read/write paths (one frame lookup per touched page) accept
        // zero-length buffers: reading or writing nothing is well-defined and
        // callers (page loops) reach it naturally at range edges.
        let mut d = dram();
        let base = d.config().base();
        d.write_bytes(base, &[], OwnerTag::new(1)).unwrap();
        let mut empty: [u8; 0] = [];
        d.read_bytes(base, &mut empty).unwrap();
        assert_eq!(d.materialized_frames(), 0);
        assert!(d.frame_ownership(base.frame_number()).is_none());
        // At the last valid byte of the window, too.
        d.write_bytes(d.config().end() - 1, &[], OwnerTag::new(1))
            .unwrap();
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut d = dram();
        let base = d.config().base();
        d.write_bytes(base, &[1, 2, 3], OwnerTag::new(1)).unwrap();
        d.scrub_range(base, 3).unwrap();
        assert_eq!(d.stats().bytes_written(), 3);
        assert_eq!(d.stats().bytes_scrubbed(), 3);
        d.reset_stats();
        assert_eq!(d.stats().bytes_written(), 0);
    }

    #[test]
    fn owner_tag_display_and_conversion() {
        let tag = OwnerTag::from(42u32);
        assert_eq!(tag.as_u32(), 42);
        assert_eq!(tag.to_string(), "owner:42");
    }

    #[test]
    fn frame_ownership_outside_window_is_none() {
        let d = dram();
        assert!(d.frame_ownership(FrameNumber::new(0)).is_none());
    }

    proptest! {
        #[test]
        fn prop_write_read_roundtrip(offset in 0u64..(16*1024*1024 - 64), data in proptest::collection::vec(any::<u8>(), 1..64)) {
            let mut d = dram();
            let addr = d.config().base() + offset;
            d.write_bytes(addr, &data, OwnerTag::new(1)).unwrap();
            let mut back = vec![0u8; data.len()];
            d.read_bytes(addr, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }

        #[test]
        fn prop_u32_roundtrip_little_endian(offset in (0u64..(16*1024*1024/4 - 1)).prop_map(|o| o * 4), value in any::<u32>()) {
            let mut d = dram();
            let addr = d.config().base() + offset;
            d.write_u32(addr, value, OwnerTag::new(1)).unwrap();
            prop_assert_eq!(d.read_u32(addr).unwrap(), value);
            // Byte-level view agrees with LE encoding.
            let mut bytes = [0u8; 4];
            d.read_bytes(addr, &mut bytes).unwrap();
            prop_assert_eq!(bytes, value.to_le_bytes());
        }

        #[test]
        fn prop_scrub_always_zeroes(offset in 0u64..(16*1024*1024 - 256), len in 1u64..256) {
            let mut d = dram();
            let addr = d.config().base() + offset;
            d.fill(addr, len, 0xEE, OwnerTag::new(3)).unwrap();
            d.scrub_range(addr, len).unwrap();
            let mut back = vec![0u8; len as usize];
            d.read_bytes(addr, &mut back).unwrap();
            prop_assert!(back.iter().all(|&b| b == 0));
        }
    }
}
