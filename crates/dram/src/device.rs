//! The DRAM device: byte-accurate storage plus residue (ownership) tracking.
//!
//! # Arena-backed bank shards
//!
//! Storage is sharded by DRAM bank: the window is cut into naturally aligned
//! *bank stripes* (one DRAM row, [`DdrMapping::stripe_bytes`] bytes), each of
//! which lives wholly inside one bank of the interleaved geometry.  Each bank
//! shard stores its stripes in a single contiguous **arena**: one lazily
//! grown `Vec<u8>` slab indexed by the bank-local stripe *ordinal*
//! ([`DdrGeometry::ordinal_of_stripe`](crate::config::DdrGeometry::ordinal_of_stripe)),
//! plus a compact stripe-presence bitmap.  Stripe addressing is pure offset
//! arithmetic — no per-stripe map lookups on any hot path — so bulk reads
//! ([`Dram::read_bytes`], [`Dram::scrape_banks_parallel`]) collapse to
//! straight `copy_from_slice` calls, scrubbing collapses to `fill` over a
//! contiguous slab range per bank, and [`Dram::scrape_view`] can hand out
//! *borrowed* zero-copy views of the arenas.  Sparse never-written regions
//! still cost nothing: slabs grow from fresh zeroed (lazily committed)
//! allocations, and stripes outside every slab span read as zero.
//!
//! All accesses are split at bank boundaries and routed through the
//! bank-local shards, which is what makes the bank-parallel paths
//! ([`Dram::scrub_banks_parallel`], [`Dram::scrape_banks_parallel`]) safe: a
//! worker that owns a disjoint set of bank shards can zero its stripes
//! without synchronizing with the others.
//!
//! The arena store is observationally identical to the flat frame map that
//! preceded the sharded designs — same bytes, same ownership transitions,
//! same [`DramStats`] counters — which is pinned by the differential harness
//! in `tests/dram_sharding_equivalence.rs`.

// Lint audit: address arithmetic here is bounds-checked against the
// DRAM window before any narrowing cast or direct index; offsets are
// derived from validated window-relative coordinates.
#![allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::addr::{FrameNumber, PhysAddr, PAGE_SIZE};
use crate::config::{DdrGeometry, DramConfig};
use crate::error::DramError;
use crate::mapping::DdrMapping;
use crate::remanence::{cell_hash, splitmix64, RemanenceModel, ResidueDecay};
use crate::stats::DramStats;
use crate::swap::SwapStore;
use crate::view::{zero_chunk, ScrapeView};

/// Identifies the software entity (in practice: a process id) that owns the
/// data stored in a frame.
///
/// The tag is how the simulator models *memory residue*: when a process
/// terminates without sanitization its frames keep their bytes and keep their
/// tag, but the tag is marked "dead" — exactly the state the memory scraping
/// attack exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OwnerTag(u32);

impl OwnerTag {
    /// Creates an owner tag from a raw identifier (e.g. a pid).
    pub const fn new(raw: u32) -> Self {
        OwnerTag(raw)
    }

    /// Returns the raw identifier.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for OwnerTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "owner:{}", self.0)
    }
}

impl From<u32> for OwnerTag {
    fn from(raw: u32) -> Self {
        OwnerTag(raw)
    }
}

/// Ownership state of one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameOwnership {
    /// The entity that last wrote the frame.
    pub owner: OwnerTag,
    /// `true` while the owning process is alive; `false` once it has
    /// terminated (the frame then holds *residue*).
    pub live: bool,
}

/// One bank's shard of the backing store: a contiguous arena of this bank's
/// stripes, indexed by bank-local stripe *ordinal*
/// ([`DdrGeometry::ordinal_of_stripe`]), plus the bank-local remanence decay
/// state.
///
/// The slab covers the ordinal span `[span_lo, span_lo + span)` and is grown
/// (never shrunk) when a write lands outside it.  Growth allocates a *fresh*
/// zeroed vector and copies the old slab over: fresh zeroed allocations come
/// from the allocator as untouched, lazily committed pages, so a wide span
/// over a sparsely written bank costs address space, not resident memory.
/// Inside the span, stripe addressing is pure offset arithmetic:
/// `(ordinal - span_lo) * stripe_bytes`.
#[derive(Debug, Clone, Default)]
struct BankShard {
    /// The bank's stripe arena, `span * stripe_bytes` bytes.
    slab: Vec<u8>,
    /// First stripe ordinal covered by the slab.
    span_lo: u64,
    /// Presence bitmap over the span: bit `i` means ordinal `span_lo + i`
    /// has been *written* at least once.  Scrubs zero bytes but never clear
    /// bits, mirroring the materialization semantics of the map-backed store
    /// this arena replaced.
    present: Vec<u64>,
    /// Number of set bits in `present` (the per-bank utilization count).
    present_count: usize,
    /// Remanence decay origins: for each decay granule (one DRAM row clipped
    /// to a frame — see [`Dram::decay_granule_bytes`]) of this bank currently
    /// holding residue, the logical tick at which its owner terminated.
    /// Empty — and never consulted — under [`RemanenceModel::Perfect`].
    decay_origins: HashMap<u64, u64>,
}

impl BankShard {
    /// Number of stripes covered by the slab.
    fn span(&self, sb: usize) -> u64 {
        (self.slab.len() / sb) as u64
    }

    fn covers(&self, ordinal: u64, sb: usize) -> bool {
        ordinal >= self.span_lo && ordinal - self.span_lo < self.span(sb)
    }

    /// Borrows the stripe at `ordinal` if the slab covers it.  Covered but
    /// never-written stripes are all-zero, so reading them through the slab
    /// is indistinguishable from the implicit zeros outside the span.
    fn stripe(&self, ordinal: u64, sb: usize) -> Option<&[u8]> {
        if !self.covers(ordinal, sb) {
            return None;
        }
        let offset = (ordinal - self.span_lo) as usize * sb;
        Some(&self.slab[offset..offset + sb])
    }

    /// Mutably borrows the stripe at `ordinal`, growing the slab to cover it
    /// and marking it present (written at least once).
    fn stripe_mut(&mut self, ordinal: u64, sb: usize, ordinal_bound: u64) -> &mut [u8] {
        self.ensure_covers(ordinal, sb, ordinal_bound);
        let index = (ordinal - self.span_lo) as usize;
        let word = &mut self.present[index / 64];
        let bit = 1u64 << (index % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.present_count += 1;
        }
        let offset = index * sb;
        &mut self.slab[offset..offset + sb]
    }

    fn ensure_covers(&mut self, ordinal: u64, sb: usize, ordinal_bound: u64) {
        let span = self.span(sb);
        if span == 0 {
            self.span_lo = ordinal;
            self.slab = vec![0u8; sb];
            self.present = vec![0u64; 1];
            return;
        }
        if self.covers(ordinal, sb) {
            return;
        }
        // Geometric over-growth on the side being extended, so a sweep of
        // scattered writes costs O(log n) reallocations, clamped to the
        // ordinals the window can actually produce.
        let mut new_lo = self.span_lo;
        let mut new_hi = self.span_lo + span;
        if ordinal < self.span_lo {
            new_lo = ordinal.saturating_sub(span);
        } else {
            new_hi = (ordinal + 1)
                .saturating_add(span)
                .min(ordinal_bound)
                .max(ordinal + 1);
        }
        self.grow(new_lo, new_hi, sb);
    }

    /// Reallocates the slab to cover `[new_lo, new_hi)`: a fresh zeroed
    /// allocation with the old contents (and presence bits) shifted in.
    fn grow(&mut self, new_lo: u64, new_hi: u64, sb: usize) {
        let old_span = self.span(sb) as usize;
        let new_span = (new_hi - new_lo) as usize;
        let shift = (self.span_lo - new_lo) as usize;
        let mut slab = vec![0u8; new_span * sb];
        slab[shift * sb..shift * sb + self.slab.len()].copy_from_slice(&self.slab);
        let mut present = vec![0u64; new_span.div_ceil(64)];
        for index in 0..old_span {
            if self.present[index / 64] >> (index % 64) & 1 == 1 {
                let moved = index + shift;
                present[moved / 64] |= 1 << (moved % 64);
            }
        }
        self.slab = slab;
        self.present = present;
        self.span_lo = new_lo;
    }

    /// Zeroes the covered intersection of ordinals `[lo, hi)` with the span
    /// in one contiguous slab `fill` — the arena's collapsed scrub.
    fn zero_ordinals(&mut self, lo: u64, hi: u64, sb: usize) {
        let from = lo.max(self.span_lo);
        let to = hi.min(self.span_lo + self.span(sb));
        if from >= to {
            return;
        }
        let a = (from - self.span_lo) as usize * sb;
        let b = (to - self.span_lo) as usize * sb;
        self.slab[a..b].fill(0);
    }

    /// Zeroes bytes `[from, to)` within the stripe at `ordinal`, if covered
    /// (absent stripes are already zero and are not materialized).
    fn zero_partial(&mut self, ordinal: u64, from: usize, to: usize, sb: usize) {
        if !self.covers(ordinal, sb) {
            return;
        }
        let offset = (ordinal - self.span_lo) as usize * sb;
        self.slab[offset + from..offset + to].fill(0);
    }
}

/// Zeroes the intersection of window offsets `[rel_start, rel_end)` with one
/// bank's arena: the partially covered head/tail stripes individually, and
/// every fully covered stripe as part of a single contiguous
/// ordinal-interval `fill`.  For a fixed bank the stripes of a window range
/// occupy one contiguous ordinal interval
/// ([`DdrGeometry::stripe_of_ordinal`] is strictly increasing per bank), so
/// the interval endpoints are found by binary search.
fn scrub_shard_range(
    shard: &mut BankShard,
    geometry: &DdrGeometry,
    bank_id: u64,
    sb: u64,
    rel_start: u64,
    rel_end: u64,
    ordinal_bound: u64,
) {
    let sbu = sb as usize;
    let head = rel_start / sb;
    let head_end = ((head + 1) * sb).min(rel_end);
    if (!rel_start.is_multiple_of(sb) || head_end < (head + 1) * sb)
        && geometry.bank_of_stripe(head) == bank_id
    {
        shard.zero_partial(
            geometry.ordinal_of_stripe(head),
            (rel_start - head * sb) as usize,
            (head_end - head * sb) as usize,
            sbu,
        );
    }
    let tail = (rel_end - 1) / sb;
    if !rel_end.is_multiple_of(sb) && tail != head && geometry.bank_of_stripe(tail) == bank_id {
        shard.zero_partial(
            geometry.ordinal_of_stripe(tail),
            0,
            (rel_end - tail * sb) as usize,
            sbu,
        );
    }
    let first_full = rel_start.div_ceil(sb);
    let end_full = rel_end / sb;
    if first_full >= end_full {
        return;
    }
    let lo = ordinal_lower_bound(geometry, bank_id, first_full, ordinal_bound);
    let hi = ordinal_lower_bound(geometry, bank_id, end_full, ordinal_bound);
    shard.zero_ordinals(lo, hi, sbu);
}

/// Smallest ordinal `o` in `[0, bound)` with
/// `stripe_of_ordinal(bank_id, o) >= stripe`, or `bound` when none exists
/// (valid because the stripe index is strictly increasing in the ordinal for
/// a fixed bank).
fn ordinal_lower_bound(geometry: &DdrGeometry, bank_id: u64, stripe: u64, bound: u64) -> u64 {
    let (mut lo, mut hi) = (0u64, bound);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if geometry.stripe_of_ordinal(bank_id, mid) < stripe {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The simulated DRAM device.
///
/// Storage is sparse and bank-sharded: bank stripes are materialized on first
/// write, so a 2 GiB window costs memory proportional to the bytes actually
/// touched, and very large boards no longer serialize every access on one
/// flat frame map.
///
/// # Example
///
/// ```
/// use zynq_dram::{Dram, DramConfig, OwnerTag};
///
/// # fn main() -> Result<(), zynq_dram::DramError> {
/// let mut dram = Dram::new(DramConfig::tiny_for_tests());
/// let addr = dram.config().base() + 0x40;
/// dram.write_u64(addr, 0xDEAD_BEEF_F00D_CAFE, OwnerTag::new(7))?;
/// assert_eq!(dram.read_u64(addr)?, 0xDEAD_BEEF_F00D_CAFE);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Bytes per bank stripe (one DRAM row); every stripe lives in one bank.
    stripe_bytes: u64,
    /// One arena shard per (rank, bank group, bank), indexed by flat bank id.
    banks: Vec<BankShard>,
    /// Exclusive upper bound of the stripe ordinals the window can produce
    /// (identical for every bank); clamps geometric slab growth.
    ordinal_bound: u64,
    /// Frames that have been materialized (written at least once).
    materialized: HashSet<u64>,
    ownership: HashMap<u64, FrameOwnership>,
    stats: DramStats,
    /// How residue decays over logical ticks ([`RemanenceModel::Perfect`]
    /// keeps the pre-remanence behavior bit-exactly).
    remanence: RemanenceModel,
    /// Seed of the per-cell decay draws (the campaign threads the cell seed
    /// here, so decay is replayable per cell).
    remanence_seed: u64,
    /// The device's logical decay clock — advanced by the kernel on scenario
    /// steps and churned scrape chunks, never by wall clock.
    remanence_tick: u64,
    /// The board's compressed swap device (zram-style).  Lives beside the
    /// frame store so sanitize policies — which receive `&mut Dram` — can
    /// reach both substrates; its decay clock advances in lock-step with
    /// [`Dram::advance_remanence`].
    swap: SwapStore,
}

impl Dram {
    /// Creates an empty (all-zero) DRAM with the given configuration.
    pub fn new(config: DramConfig) -> Self {
        let mapping = DdrMapping::new(config);
        let bank_count = mapping.bank_count() as usize;
        let geometry = config.geometry();
        // Upper-bound the ordinals reachable from the window: the last
        // stripe's overflow bits cap the wrap count, and within one wrap the
        // row bits cap the ordinal.
        let last_stripe = (config.capacity() - 1) / mapping.stripe_bytes();
        let wrap_shift =
            geometry.bank_group_bits + geometry.bank_bits + geometry.row_bits + geometry.rank_bits;
        let ordinal_bound = ((last_stripe >> wrap_shift) + 1) << geometry.row_bits;
        Dram {
            config,
            stripe_bytes: mapping.stripe_bytes(),
            banks: vec![BankShard::default(); bank_count],
            ordinal_bound,
            materialized: HashSet::new(),
            ownership: HashMap::new(),
            stats: DramStats::default(),
            remanence: RemanenceModel::Perfect,
            remanence_seed: 0,
            remanence_tick: 0,
            swap: SwapStore::new(),
        }
    }

    /// Sets the remanence decay model (default [`RemanenceModel::Perfect`]).
    pub fn set_remanence(&mut self, model: RemanenceModel) {
        self.remanence = model;
    }

    /// Seeds the per-cell decay draws (the campaign engine passes the cell
    /// seed, making decayed scrapes replayable per cell).  The swap store's
    /// draws are derived from the same seed through a salt, so the two
    /// substrates decay independently but replay together.
    pub fn set_remanence_seed(&mut self, seed: u64) {
        self.remanence_seed = seed;
        self.swap.set_seed(splitmix64(seed ^ 0x51AB_5107_0000_5EED));
    }

    /// The active remanence decay model.
    pub fn remanence(&self) -> RemanenceModel {
        self.remanence
    }

    /// The current logical decay tick.
    pub fn remanence_tick(&self) -> u64 {
        self.remanence_tick
    }

    /// Advances the logical decay clock by `ticks`.
    ///
    /// Ticks are *logical* — the kernel advances them on scenario steps
    /// (spawns, writes, terminations) and on churned scrape chunks, never on
    /// wall clock, so 1-worker and N-worker campaign runs see identical decay.
    /// Nothing is mutated here: decay is applied lazily, as a pure view, when
    /// non-owned residue is read.
    pub fn advance_remanence(&mut self, ticks: u64) {
        self.remanence_tick += ticks;
        self.swap.advance(ticks);
    }

    /// The board's compressed swap device.
    pub fn swap_store(&self) -> &SwapStore {
        &self.swap
    }

    /// Mutable access to the compressed swap device (kernel swap-out paths
    /// and swap-aware sanitizers).
    pub fn swap_store_mut(&mut self) -> &mut SwapStore {
        &mut self.swap
    }

    /// The configuration this device was built with.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Resets the access statistics without touching memory contents.
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Number of bank shards backing the store
    /// (ranks × bank groups × banks per group).
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Bytes per bank stripe — the granularity at which requests are split
    /// across bank shards (one DRAM row).
    pub fn stripe_bytes(&self) -> u64 {
        self.stripe_bytes
    }

    /// Number of stripes currently materialized in each bank shard, indexed
    /// by flat bank id (the store-utilization view the `--banks` experiment
    /// table reports).
    pub fn bank_stripe_counts(&self) -> Vec<usize> {
        self.banks.iter().map(|b| b.present_count).collect()
    }

    /// Total number of materialized bank stripes across all shards.
    pub fn materialized_stripes(&self) -> usize {
        self.banks.iter().map(|b| b.present_count).sum()
    }

    /// Total bytes of slab address space reserved across all bank arenas.
    ///
    /// This measures the *virtual* extent of the ordinal spans — growth
    /// allocates fresh zeroed (lazily committed) memory, so the resident
    /// cost tracks the bytes actually written — and is what the sparse-window
    /// equivalence test pins as proportional to the touched region rather
    /// than the window size.
    pub fn arena_bytes(&self) -> u64 {
        self.banks.iter().map(|b| b.slab.len() as u64).sum()
    }

    fn frame_index(&self, addr: PhysAddr) -> u64 {
        addr.offset_from(self.config.base()) / PAGE_SIZE
    }

    /// The bank shard holding `stripe` (the single
    /// [`DdrGeometry::bank_of_stripe`](crate::config::DdrGeometry::bank_of_stripe)
    /// routing definition, shared with the mapping layer).
    fn stripe_bank(&self, stripe: u64) -> usize {
        self.config.geometry().bank_of_stripe(stripe) as usize
    }

    fn stripe(&self, stripe: u64) -> Option<&[u8]> {
        let geometry = self.config.geometry();
        self.banks[geometry.bank_of_stripe(stripe) as usize].stripe(
            geometry.ordinal_of_stripe(stripe),
            self.stripe_bytes as usize,
        )
    }

    fn stripe_mut(&mut self, stripe: u64) -> &mut [u8] {
        let geometry = self.config.geometry();
        let sb = self.stripe_bytes as usize;
        let bound = self.ordinal_bound;
        self.banks[geometry.bank_of_stripe(stripe) as usize].stripe_mut(
            geometry.ordinal_of_stripe(stripe),
            sb,
            bound,
        )
    }

    /// Bytes per decay granule: one DRAM row clipped to a frame.  Residue
    /// transitions (termination, re-ownership, scrubbing) are frame-granular
    /// and stripes are the shard-routing unit, so the granule — the largest
    /// block contained in exactly one frame *and* one stripe — is the exact
    /// granularity at which decay epochs can open and close.  On the real
    /// geometries (row ≤ page) this is simply the bank stripe; only the
    /// synthetic stripe-larger-than-page test geometries clip it.
    fn decay_granule_bytes(&self) -> u64 {
        self.stripe_bytes.min(PAGE_SIZE)
    }

    /// Global decay-granule indices covering frame `idx` (each granule lies
    /// entirely inside the frame — both are powers of two).
    fn frame_decay_granules(&self, idx: u64) -> std::ops::Range<u64> {
        let g = self.decay_granule_bytes();
        (idx * PAGE_SIZE / g)..((idx + 1) * PAGE_SIZE / g)
    }

    /// The bank shard holding a decay granule's origin record (the bank of
    /// the stripe the granule belongs to).
    fn granule_bank(&self, granule: u64) -> usize {
        self.stripe_bank(granule * self.decay_granule_bytes() / self.stripe_bytes)
    }

    /// Records the residue origin of every decay granule of frame `idx`
    /// (called when the frame's owner terminates).  Granules are contained
    /// in the frame, so the frame's termination tick *is* their epoch —
    /// including when an earlier epoch's stale record is being replaced
    /// after the frame was re-owned and retired again.
    fn stamp_decay_origins(&mut self, idx: u64) {
        let tick = self.remanence_tick;
        for granule in self.frame_decay_granules(idx) {
            let bank = self.granule_bank(granule);
            self.banks[bank].decay_origins.insert(granule, tick);
        }
    }

    /// Drops the decay origins of frame `idx`'s granules (called when the
    /// frame stops being residue: re-owned by a live writer or scrubbed
    /// clean).  Exact in every geometry, since a granule never straddles
    /// frames.
    fn clear_decay_origins(&mut self, idx: u64) {
        for granule in self.frame_decay_granules(idx) {
            let bank = self.granule_bank(granule);
            self.banks[bank].decay_origins.remove(&granule);
        }
    }

    /// Applies the remanence decay view to `buf` (previously filled from the
    /// raw store starting at `addr`): bytes belonging to residue frames are
    /// mapped through the model's decay curve, everything else is returned
    /// raw.
    ///
    /// The view is a pure function of the decay seed, the cell coordinates,
    /// the granule's residue origin and the current logical tick — no state
    /// is mutated — so sequential and bank-parallel readers produce identical
    /// bytes, and the whole pass is skipped by one branch under
    /// [`RemanenceModel::Perfect`].
    fn apply_decay_view(&self, addr: PhysAddr, buf: &mut [u8]) {
        if self.remanence.is_perfect() || buf.is_empty() {
            return;
        }
        let base = self.config.base();
        let sb = self.stripe_bytes;
        let granule_bytes = self.decay_granule_bytes();
        let now = self.remanence_tick;
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let rel = (addr + cursor as u64).offset_from(base);
            // Chunks never cross a frame (residue gating) or stripe (hash
            // coordinates) boundary — which also pins them inside one decay
            // granule, since the granule is the smaller of the two.
            let frame_remaining = PAGE_SIZE - rel % PAGE_SIZE;
            let stripe = rel / sb;
            let stripe_remaining = sb - rel % sb;
            let chunk = frame_remaining
                .min(stripe_remaining)
                .min((buf.len() - cursor) as u64) as usize;
            let frame = rel / PAGE_SIZE;
            let is_residue = self.ownership.get(&frame).is_some_and(|rec| !rec.live);
            if is_residue {
                let origin = self.banks[self.stripe_bank(stripe)]
                    .decay_origins
                    .get(&(rel / granule_bytes));
                if let Some(&origin) = origin {
                    let curve = self.remanence.curve(now.saturating_sub(origin));
                    if !curve.is_identity() {
                        let offset_in_stripe = rel % sb;
                        for (i, byte) in buf[cursor..cursor + chunk].iter_mut().enumerate() {
                            if *byte != 0 {
                                *byte = curve.apply(
                                    *byte,
                                    cell_hash(
                                        self.remanence_seed,
                                        stripe,
                                        offset_in_stripe + i as u64,
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            cursor += chunk;
        }
    }

    fn check_range(&self, addr: PhysAddr, len: u64) -> Result<(), DramError> {
        if len > 0 && addr.checked_add(len - 1).is_none() {
            return Err(DramError::LengthOverflow { addr, len });
        }
        if !self.config.contains_range(addr, len.max(1)) {
            return Err(DramError::OutOfRange { addr, len });
        }
        Ok(())
    }

    fn check_aligned(&self, addr: PhysAddr, align: u64) -> Result<(), DramError> {
        if !addr.as_u64().is_multiple_of(align) {
            return Err(DramError::Misaligned {
                addr,
                required: align,
            });
        }
        Ok(())
    }

    /// Reads a single byte.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the address is outside the window.
    pub fn read_u8(&self, addr: PhysAddr) -> Result<u8, DramError> {
        self.check_range(addr, 1)?;
        let rel = addr.offset_from(self.config.base());
        let offset = (rel % self.stripe_bytes) as usize;
        let mut byte = [self
            .stripe(rel / self.stripe_bytes)
            .map(|s| s[offset])
            .unwrap_or(0)];
        self.apply_decay_view(addr, &mut byte);
        Ok(byte[0])
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// Unmaterialized stripes read as zero, matching DRAM that has been
    /// initialized once at power-on.  Bytes belonging to terminated-process
    /// residue are returned through the remanence decay view (a pure,
    /// non-mutating transformation; inert under [`RemanenceModel::Perfect`]).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if any byte falls outside the window.
    pub fn read_bytes(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), DramError> {
        self.check_range(addr, buf.len() as u64)?;
        self.read_decayed_unchecked(addr, buf);
        Ok(())
    }

    /// The range-checked body of [`Dram::read_bytes`]: raw shard copy
    /// followed by the lazy decay view.
    fn read_decayed_unchecked(&self, addr: PhysAddr, buf: &mut [u8]) {
        self.read_bytes_unchecked(addr, buf);
        self.apply_decay_view(addr, buf);
    }

    /// The raw (pre-decay) bulk read: one shard lookup per touched bank
    /// stripe, bulk-copying stripe-sized chunks.
    fn read_bytes_unchecked(&self, addr: PhysAddr, buf: &mut [u8]) {
        let base = self.config.base();
        let sb = self.stripe_bytes;
        let mut cursor = 0usize;
        while cursor < buf.len() {
            let rel = (addr + cursor as u64).offset_from(base);
            let offset = (rel % sb) as usize;
            let chunk = (sb as usize - offset).min(buf.len() - cursor);
            let dst = &mut buf[cursor..cursor + chunk];
            match self.stripe(rel / sb) {
                Some(stripe) => dst.copy_from_slice(&stripe[offset..offset + chunk]),
                None => dst.fill(0),
            }
            cursor += chunk;
        }
    }

    /// Reads a naturally aligned little-endian 32-bit word (the access
    /// `devmem <addr>` performs).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] if `addr` is not 4-byte aligned and
    /// [`DramError::OutOfRange`] if the word crosses the window boundary.
    pub fn read_u32(&self, addr: PhysAddr) -> Result<u32, DramError> {
        self.check_aligned(addr, 4)?;
        let mut buf = [0u8; 4];
        self.read_bytes(addr, &mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    /// Reads a naturally aligned little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] if `addr` is not 8-byte aligned and
    /// [`DramError::OutOfRange`] if the word crosses the window boundary.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, DramError> {
        self.check_aligned(addr, 8)?;
        let mut buf = [0u8; 8];
        self.read_bytes(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Bank-parallel scrape: fills `buf` from `addr` exactly like
    /// [`Dram::read_bytes`], but fans the copy across `workers` scoped
    /// threads, each reading a stripe-aligned contiguous slice of the range
    /// from the (read-only, shareable) bank shards.
    ///
    /// The result is **byte-identical** to the sequential read; only the
    /// wall clock differs.  One worker degenerates to the sequential path.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::ZeroWorkers`] for an empty worker pool and
    /// [`DramError::OutOfRange`] under the same conditions as
    /// [`Dram::read_bytes`].
    pub fn scrape_banks_parallel(
        &self,
        addr: PhysAddr,
        buf: &mut [u8],
        workers: usize,
    ) -> Result<(), DramError> {
        if workers == 0 {
            return Err(DramError::ZeroWorkers);
        }
        self.check_range(addr, buf.len() as u64)?;
        if workers == 1 || buf.len() as u64 <= self.stripe_bytes {
            self.read_decayed_unchecked(addr, buf);
            return Ok(());
        }
        // Split the output into stripe-aligned contiguous pieces, one per
        // worker; consecutive stripes rotate through the bank groups, so each
        // piece naturally spreads over many banks.
        let sb = self.stripe_bytes;
        let first_stripe = addr.offset_from(self.config.base()) / sb;
        let last_stripe = (addr + (buf.len() as u64 - 1)).offset_from(self.config.base()) / sb;
        let stripes = last_stripe - first_stripe + 1;
        let stripes_per_worker = stripes.div_ceil(workers as u64);

        // Shadow log (race-check builds only): one window-relative byte
        // interval per worker piece, asserted cross-worker disjoint after
        // the scope joins.
        #[cfg(feature = "race-check")]
        let race_log = crate::racecheck::AccessLog::new("Dram::scrape_banks_parallel");

        std::thread::scope(|scope| {
            let mut rest = buf;
            let mut piece_addr = addr;
            for w in 0..workers {
                if rest.is_empty() {
                    break;
                }
                // Bytes from `piece_addr` to the end of this worker's stripe
                // allotment.
                let alloc_end_stripe = first_stripe + (w as u64 + 1) * stripes_per_worker;
                let alloc_end =
                    self.config.base() + (alloc_end_stripe * sb).min(self.config.capacity());
                let piece_len = alloc_end.offset_from(piece_addr).min(rest.len() as u64) as usize;
                let (piece, tail) = rest.split_at_mut(piece_len);
                rest = tail;
                let start = piece_addr;
                #[cfg(feature = "race-check")]
                {
                    let rel = start.offset_from(self.config.base());
                    race_log.record(w, rel..rel + piece_len as u64);
                }
                // Decay is a pure per-cell function, so applying it piecewise
                // inside each worker is byte-identical to the sequential pass.
                scope.spawn(move || self.read_decayed_unchecked(start, piece));
                piece_addr += piece_len as u64;
            }
            // Any residue (rounding) is handled by the last allotment covering
            // the full tail; assert the split was exhaustive.
            debug_assert!(
                rest.is_empty(),
                "parallel scrape split must cover the range"
            );
        });
        #[cfg(feature = "race-check")]
        race_log.finish();
        Ok(())
    }

    /// `true` when [`Dram::scrape_view`] will hand out borrowed views —
    /// i.e. the remanence model is perfect, so reads need no owned decay
    /// transform.  Callers use this to pick the zero-copy path up front
    /// without issuing a speculative read.
    pub fn supports_borrowed_reads(&self) -> bool {
        self.remanence.is_perfect()
    }

    /// Borrows a zero-copy [`ScrapeView`] of `[addr, addr + len)` straight
    /// out of the bank arenas: no bytes are copied, and regions outside
    /// every slab span alias a shared static zero chunk.
    ///
    /// Returns `Ok(None)` when the remanence model is not
    /// [`RemanenceModel::Perfect`]: decayed reads must materialize an owned
    /// transform of the residue, so callers fall back to
    /// [`Dram::read_bytes`].  Under the perfect model the view is
    /// byte-identical to [`Dram::read_bytes`] over the same range.
    pub fn scrape_view(
        &self,
        addr: PhysAddr,
        len: u64,
    ) -> Result<Option<ScrapeView<'_>>, DramError> {
        self.check_range(addr, len)?;
        if !self.remanence.is_perfect() {
            return Ok(None);
        }
        let unit = self.stripe_bytes.min(PAGE_SIZE);
        let mut view = ScrapeView::with_unit(unit as usize);
        let rel = addr.offset_from(self.config.base());
        // Partial head up to the next unit boundary.  Units never straddle a
        // stripe: the unit divides the stripe size (both are powers of two,
        // unit the smaller) and the window base is page-aligned.
        let mut cursor = 0u64;
        if !rel.is_multiple_of(unit) {
            let head_len = (unit - rel % unit).min(len);
            view.set_head(self.unit_slice(rel, head_len as usize));
            cursor = head_len;
        }
        while cursor < len {
            let chunk = unit.min(len - cursor) as usize;
            view.push_chunk(self.unit_slice(rel + cursor, chunk));
            cursor += chunk as u64;
        }
        Ok(Some(view))
    }

    /// A borrowed `len`-byte slice at window offset `rel`; the caller
    /// guarantees the range lies inside one unit (hence one stripe).  Absent
    /// stripes alias the shared zero chunk.
    fn unit_slice(&self, rel: u64, len: usize) -> &[u8] {
        let sb = self.stripe_bytes;
        match self.stripe(rel / sb) {
            Some(stripe) => {
                let offset = (rel % sb) as usize;
                &stripe[offset..offset + len]
            }
            None => zero_chunk(len),
        }
    }

    fn tag_frame(&mut self, idx: u64, owner: OwnerTag) {
        self.ownership
            .insert(idx, FrameOwnership { owner, live: true });
    }

    /// Tags and materializes every frame overlapping `[addr, addr + len)`,
    /// preserving the frame-granular ownership semantics of the flat store.
    fn tag_written_frames(&mut self, addr: PhysAddr, len: u64, owner: OwnerTag) {
        if len == 0 {
            return;
        }
        let first = self.frame_index(addr);
        let last = self.frame_index(addr + (len - 1));
        let track_decay = !self.remanence.is_perfect();
        for idx in first..=last {
            self.materialized.insert(idx);
            self.tag_frame(idx, owner);
            if track_decay {
                // The frame is live again: it is no longer residue, so its
                // decay epoch ends.
                self.clear_decay_origins(idx);
            }
        }
    }

    /// Writes a single byte on behalf of `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the address is outside the window.
    pub fn write_u8(
        &mut self,
        addr: PhysAddr,
        value: u8,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_range(addr, 1)?;
        let rel = addr.offset_from(self.config.base());
        let offset = (rel % self.stripe_bytes) as usize;
        self.stripe_mut(rel / self.stripe_bytes)[offset] = value;
        self.tag_written_frames(addr, 1, owner);
        self.stats.record_write(1);
        Ok(())
    }

    /// Writes `data` starting at `addr` on behalf of `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if any byte falls outside the window.
    pub fn write_bytes(
        &mut self,
        addr: PhysAddr,
        data: &[u8],
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_range(addr, data.len() as u64)?;
        // One shard materialization per touched bank stripe, bulk-copying
        // stripe-sized chunks; ownership stays frame-granular.
        let base = self.config.base();
        let sb = self.stripe_bytes;
        let mut cursor = 0usize;
        while cursor < data.len() {
            let rel = (addr + cursor as u64).offset_from(base);
            let offset = (rel % sb) as usize;
            let chunk = (sb as usize - offset).min(data.len() - cursor);
            self.stripe_mut(rel / sb)[offset..offset + chunk]
                .copy_from_slice(&data[cursor..cursor + chunk]);
            cursor += chunk;
        }
        self.tag_written_frames(addr, data.len() as u64, owner);
        self.stats.record_write(data.len() as u64);
        Ok(())
    }

    /// Writes a naturally aligned little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] or [`DramError::OutOfRange`] under
    /// the same conditions as [`Dram::read_u32`].
    pub fn write_u32(
        &mut self,
        addr: PhysAddr,
        value: u32,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_aligned(addr, 4)?;
        self.write_bytes(addr, &value.to_le_bytes(), owner)
    }

    /// Writes a naturally aligned little-endian 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::Misaligned`] or [`DramError::OutOfRange`] under
    /// the same conditions as [`Dram::read_u64`].
    pub fn write_u64(
        &mut self,
        addr: PhysAddr,
        value: u64,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        self.check_aligned(addr, 8)?;
        self.write_bytes(addr, &value.to_le_bytes(), owner)
    }

    /// Fills `len` bytes starting at `addr` with `byte` on behalf of `owner`.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the range leaves the window and
    /// [`DramError::EmptyRange`] when `len` is zero (almost always an
    /// end-before-start range computed by the caller).
    pub fn fill(
        &mut self,
        addr: PhysAddr,
        len: u64,
        byte: u8,
        owner: OwnerTag,
    ) -> Result<(), DramError> {
        if len == 0 {
            return Err(DramError::EmptyRange { addr });
        }
        self.check_range(addr, len)?;
        let base = self.config.base();
        let sb = self.stripe_bytes;
        let mut cursor = 0u64;
        while cursor < len {
            let rel = (addr + cursor).offset_from(base);
            let offset = (rel % sb) as usize;
            let chunk = ((sb - offset as u64).min(len - cursor)) as usize;
            self.stripe_mut(rel / sb)[offset..offset + chunk].fill(byte);
            cursor += chunk as u64;
        }
        self.tag_written_frames(addr, len, owner);
        self.stats.record_write(len);
        Ok(())
    }

    /// `true` when every byte of frame `idx` is zero (absent stripes count
    /// as zero).
    fn frame_is_zero(&self, idx: u64) -> bool {
        if !self.materialized.contains(&idx) {
            return true;
        }
        let sb = self.stripe_bytes;
        let frame_start = idx * PAGE_SIZE;
        let frame_end = frame_start + PAGE_SIZE;
        let mut rel = frame_start;
        while rel < frame_end {
            let offset = rel % sb;
            let chunk = (sb - offset).min(frame_end - rel);
            if let Some(stripe) = self.stripe(rel / sb) {
                let slice = &stripe[offset as usize..(offset + chunk) as usize];
                if slice.iter().any(|&b| b != 0) {
                    return false;
                }
            }
            rel += chunk;
        }
        true
    }

    /// Zeroes the covered slices of every *materialized* stripe in
    /// `[addr, addr + len)`; stripes outside every slab span are already
    /// zero.  Small ranges walk their few stripes directly (O(1) offset
    /// arithmetic each); large ranges collapse to one contiguous slab `fill`
    /// per bank over the fully covered interior.
    fn zero_stripes(&mut self, addr: PhysAddr, len: u64) {
        let sb = self.stripe_bytes;
        let rel_start = addr.offset_from(self.config.base());
        let rel_end = rel_start + len;
        let geometry = self.config.geometry();
        let stripes = rel_end.div_ceil(sb) - rel_start / sb;
        if stripes <= 2 * self.banks.len() as u64 {
            let mut cursor = 0u64;
            while cursor < len {
                let rel = rel_start + cursor;
                let offset = (rel % sb) as usize;
                let chunk = ((sb - offset as u64).min(len - cursor)) as usize;
                let stripe = rel / sb;
                self.banks[geometry.bank_of_stripe(stripe) as usize].zero_partial(
                    geometry.ordinal_of_stripe(stripe),
                    offset,
                    offset + chunk,
                    sb as usize,
                );
                cursor += chunk as u64;
            }
            return;
        }
        let bound = self.ordinal_bound;
        for (bank_id, shard) in self.banks.iter_mut().enumerate() {
            scrub_shard_range(
                shard,
                &geometry,
                bank_id as u64,
                sb,
                rel_start,
                rel_end,
                bound,
            );
        }
    }

    /// Drops the ownership record of every frame in `[addr, addr + len)` that
    /// the scrub left entirely zero (row- or bank-granular sanitizers clear a
    /// frame across several sub-page calls; the attribution should disappear
    /// once nothing of the owner's data remains).
    fn drop_zeroed_ownership(&mut self, addr: PhysAddr, len: u64) {
        let first = self.frame_index(addr);
        let last = self.frame_index(addr + (len - 1));
        let rel_start = addr.offset_from(self.config.base());
        let rel_end = rel_start + len;
        let track_decay = !self.remanence.is_perfect();
        for idx in first..=last {
            // A frame fully covered by the scrub is zero by construction; a
            // partially covered one must be scanned.
            let fully_covered = idx * PAGE_SIZE >= rel_start && (idx + 1) * PAGE_SIZE <= rel_end;
            if fully_covered || self.frame_is_zero(idx) {
                self.ownership.remove(&idx);
                if track_decay {
                    // Scrubbed clean: nothing left to decay.
                    self.clear_decay_origins(idx);
                }
            }
        }
    }

    /// Zeroes `len` bytes starting at `addr` **as a sanitizer** (the write is
    /// counted as scrubbing, not as an owner write, and the ownership record
    /// of frames left entirely zero is removed).
    ///
    /// # Errors
    ///
    /// Returns [`DramError::OutOfRange`] if the range leaves the window and
    /// [`DramError::EmptyRange`] when `len` is zero — a sanitizer asked to
    /// scrub nothing is a caller bug (typically an end-before-start span) and
    /// must not be recorded as a successful scrub.
    pub fn scrub_range(&mut self, addr: PhysAddr, len: u64) -> Result<(), DramError> {
        if len == 0 {
            return Err(DramError::EmptyRange { addr });
        }
        self.check_range(addr, len)?;
        self.zero_stripes(addr, len);
        self.drop_zeroed_ownership(addr, len);
        self.stats.record_scrub(len);
        Ok(())
    }

    /// Bank-parallel scrub: zeroes `[addr, addr + len)` exactly like
    /// [`Dram::scrub_range`], but fans the zeroing across `workers` scoped
    /// threads, each owning a disjoint contiguous block of bank shards.
    ///
    /// Every stripe belongs to exactly one bank (the partition
    /// [`DdrMapping::split_at_bank_boundaries`] exposes), so the workers
    /// never touch the same buffer; the frame-granular ownership pass runs
    /// once afterwards, serially.  The result — contents, ownership and the
    /// byte/op counters of [`DramStats`] — is **identical** to the
    /// sequential scrub; only the wall clock and the fan-out telemetry
    /// ([`DramStats::parallel_scrub_ops`]) differ.
    ///
    /// # Errors
    ///
    /// Returns [`DramError::ZeroWorkers`] for an empty worker pool, plus the
    /// same errors as [`Dram::scrub_range`].
    pub fn scrub_banks_parallel(
        &mut self,
        addr: PhysAddr,
        len: u64,
        workers: usize,
    ) -> Result<(), DramError> {
        if workers == 0 {
            return Err(DramError::ZeroWorkers);
        }
        if len == 0 {
            return Err(DramError::EmptyRange { addr });
        }
        self.check_range(addr, len)?;
        let workers = workers.min(self.banks.len());
        if workers <= 1 {
            self.zero_stripes(addr, len);
        } else {
            let sb = self.stripe_bytes;
            let base = self.config.base();
            let rel_start = addr.offset_from(base);
            let rel_end = rel_start + len;
            let geometry = self.config.geometry();
            let bound = self.ordinal_bound;
            let banks_per_worker = self.banks.len().div_ceil(workers);
            // chunks_mut can produce fewer blocks than requested workers when
            // the bank count does not divide evenly; telemetry records the
            // threads that actually run.
            let spawned = self.banks.len().div_ceil(banks_per_worker);

            // Shadow log (race-check builds only): one bank-ordinal interval
            // per worker block, asserted cross-worker disjoint after the
            // scope joins.
            #[cfg(feature = "race-check")]
            let race_log = crate::racecheck::AccessLog::new("Dram::scrub_banks_parallel");

            std::thread::scope(|scope| {
                for (block, shard_block) in self.banks.chunks_mut(banks_per_worker).enumerate() {
                    let first_bank = block * banks_per_worker;
                    #[cfg(feature = "race-check")]
                    race_log.record(
                        block,
                        first_bank as u64..(first_bank + shard_block.len()) as u64,
                    );
                    scope.spawn(move || {
                        // Each shard arena holds only its own bank's stripes,
                        // so a worker zeroes the covered slab ranges of its
                        // block — one contiguous fill per bank for the fully
                        // covered interior, plus the clipped edge stripes.
                        for (i, shard) in shard_block.iter_mut().enumerate() {
                            scrub_shard_range(
                                shard,
                                &geometry,
                                (first_bank + i) as u64,
                                sb,
                                rel_start,
                                rel_end,
                                bound,
                            );
                        }
                    });
                }
            });
            #[cfg(feature = "race-check")]
            race_log.finish();
            self.stats.record_parallel_scrub(spawned);
        }
        self.drop_zeroed_ownership(addr, len);
        self.stats.record_scrub(len);
        Ok(())
    }

    /// Marks every live frame owned by `owner` as dead (terminated-process
    /// residue) without clearing any data.
    ///
    /// Under a non-perfect [`RemanenceModel`] this also opens the decay epoch
    /// of every stripe the retired frames touch: the residue starts decaying
    /// from the current logical tick.
    ///
    /// Returns the number of frames transitioned to the residue state.
    pub fn retire_owner(&mut self, owner: OwnerTag) -> usize {
        let mut retired = Vec::new();
        for (idx, record) in self.ownership.iter_mut() {
            if record.owner == owner && record.live {
                record.live = false;
                retired.push(*idx);
            }
        }
        if !self.remanence.is_perfect() {
            for idx in &retired {
                self.stamp_decay_origins(*idx);
            }
        }
        retired.len()
    }

    /// Returns the ownership record of a frame, if any entity has written it.
    pub fn frame_ownership(&self, frame: FrameNumber) -> Option<FrameOwnership> {
        if !self.config.contains_frame(frame) {
            return None;
        }
        let idx = frame.as_u64() - self.config.first_frame().as_u64();
        self.ownership.get(&idx).copied()
    }

    /// Iterates over the frames currently attributed to `owner`
    /// (live or residue).
    pub fn frames_owned_by(&self, owner: OwnerTag) -> impl Iterator<Item = FrameNumber> + '_ {
        let first = self.config.first_frame().as_u64();
        self.ownership
            .iter()
            .filter(move |(_, rec)| rec.owner == owner)
            .map(move |(idx, _)| FrameNumber::new(first + idx))
    }

    /// Iterates over all residue frames: frames whose owner has terminated
    /// but whose data has not been sanitized.
    pub fn residue_frames(&self) -> impl Iterator<Item = (FrameNumber, OwnerTag)> + '_ {
        let first = self.config.first_frame().as_u64();
        self.ownership
            .iter()
            .filter(|(_, rec)| !rec.live)
            .map(move |(idx, rec)| (FrameNumber::new(first + idx), rec.owner))
    }

    /// Non-zero bytes of frame `idx`, gathered across its bank stripes.
    fn frame_nonzero_bytes(&self, idx: u64) -> u64 {
        if !self.materialized.contains(&idx) {
            return 0;
        }
        let sb = self.stripe_bytes;
        let frame_start = idx * PAGE_SIZE;
        let frame_end = frame_start + PAGE_SIZE;
        let mut count = 0u64;
        let mut rel = frame_start;
        while rel < frame_end {
            let offset = rel % sb;
            let chunk = (sb - offset).min(frame_end - rel);
            if let Some(stripe) = self.stripe(rel / sb) {
                count += stripe[offset as usize..(offset + chunk) as usize]
                    .iter()
                    .filter(|&&b| b != 0)
                    .count() as u64;
            }
            rel += chunk;
        }
        count
    }

    /// Total number of bytes that differ from zero in residue frames.
    ///
    /// This is the quantity the defense experiments report as "recoverable
    /// residue".  It counts the *raw* store, before the remanence decay view
    /// — use [`Dram::residue_decay`] for the decayed (attacker-visible)
    /// fidelity.
    pub fn residue_bytes(&self) -> u64 {
        self.ownership
            .iter()
            .filter(|(_, rec)| !rec.live)
            .map(|(idx, _)| self.frame_nonzero_bytes(*idx))
            .sum()
    }

    /// Measures how much of the residue the remanence decay view still
    /// exposes, optionally restricted to one owner's residue frames.
    ///
    /// Compares the raw store against the decayed view frame by frame:
    /// `raw_bytes` counts non-zero residue bytes before decay,
    /// `surviving_bytes` those still non-zero through the view, and
    /// `bits_flipped` every bit the view lost.  Under
    /// [`RemanenceModel::Perfect`] the view is the identity, so
    /// `bits_flipped` is always zero.
    pub fn residue_decay(&self, owner: Option<OwnerTag>) -> ResidueDecay {
        let mut decay = ResidueDecay::default();
        let mut frames: Vec<u64> = self
            .ownership
            .iter()
            .filter(|(_, rec)| !rec.live && owner.is_none_or(|o| rec.owner == o))
            .map(|(idx, _)| *idx)
            .collect();
        frames.sort_unstable();
        if self.remanence.is_perfect() {
            // The view is the identity: the answer is knowable without
            // materializing a single decayed byte.
            let raw: u64 = frames
                .iter()
                .map(|idx| self.frame_nonzero_bytes(*idx))
                .sum();
            return ResidueDecay {
                raw_bytes: raw,
                surviving_bytes: raw,
                bits_flipped: 0,
            };
        }
        let mut raw = vec![0u8; PAGE_SIZE as usize];
        let mut seen = vec![0u8; PAGE_SIZE as usize];
        let base = self.config.base();
        for idx in frames {
            let addr = base + idx * PAGE_SIZE;
            self.read_bytes_unchecked(addr, &mut raw);
            seen.copy_from_slice(&raw);
            self.apply_decay_view(addr, &mut seen);
            for (r, s) in raw.iter().zip(&seen) {
                if *r != 0 {
                    decay.raw_bytes += 1;
                    if *s != 0 {
                        decay.surviving_bytes += 1;
                    }
                }
                decay.bits_flipped += (r ^ s).count_ones() as u64;
            }
        }
        decay
    }

    /// Number of frames that have been materialized (written at least once).
    pub fn materialized_frames(&self) -> usize {
        self.materialized.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::tiny_for_tests())
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let d = dram();
        let base = d.config().base();
        assert_eq!(d.read_u8(base).unwrap(), 0);
        assert_eq!(d.read_u32(base).unwrap(), 0);
        assert_eq!(d.read_u64(base).unwrap(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut d = dram();
        let base = d.config().base();
        let owner = OwnerTag::new(1391);
        d.write_u32(base + 4, 0xF7F5_F8FD, owner).unwrap();
        assert_eq!(d.read_u32(base + 4).unwrap(), 0xF7F5_F8FD);
        d.write_u64(base + 8, 0x0102_0304_0506_0708, owner).unwrap();
        assert_eq!(d.read_u64(base + 8).unwrap(), 0x0102_0304_0506_0708);
        d.write_u8(base, 0xAB, owner).unwrap();
        assert_eq!(d.read_u8(base).unwrap(), 0xAB);
    }

    #[test]
    fn bytes_roundtrip_across_frame_boundary() {
        let mut d = dram();
        let owner = OwnerTag::new(1);
        let addr = d.config().base() + PAGE_SIZE - 3;
        let data = [1u8, 2, 3, 4, 5, 6, 7];
        d.write_bytes(addr, &data, owner).unwrap();
        let mut back = [0u8; 7];
        d.read_bytes(addr, &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(d.materialized_frames(), 2);
    }

    #[test]
    fn bytes_roundtrip_across_bank_boundaries() {
        // A write spanning several bank stripes lands in several shards and
        // reads back bit-exactly.
        let mut d = dram();
        let owner = OwnerTag::new(9);
        let sb = d.stripe_bytes();
        let addr = d.config().base() + sb - 5;
        let data: Vec<u8> = (0..(3 * sb + 10)).map(|i| (i % 251) as u8 + 1).collect();
        d.write_bytes(addr, &data, owner).unwrap();
        let mut back = vec![0u8; data.len()];
        d.read_bytes(addr, &mut back).unwrap();
        assert_eq!(back, data);
        // The stripes really are distributed over more than one bank shard.
        let touched: usize = d.bank_stripe_counts().iter().filter(|&&c| c > 0).count();
        assert!(touched > 1, "expected multiple bank shards, got {touched}");
        assert!(d.materialized_stripes() >= 4);
    }

    #[test]
    fn bank_shard_layout_matches_the_mapping() {
        let d = dram();
        let mapping = DdrMapping::new(*d.config());
        assert_eq!(d.bank_count() as u64, mapping.bank_count());
        assert_eq!(d.stripe_bytes(), mapping.stripe_bytes());
        for stripe in 0..256 {
            assert_eq!(d.stripe_bank(stripe) as u64, mapping.bank_of_stripe(stripe));
        }
    }

    #[test]
    fn misaligned_word_access_is_rejected() {
        let mut d = dram();
        let base = d.config().base();
        assert!(matches!(
            d.read_u32(base + 1),
            Err(DramError::Misaligned { required: 4, .. })
        ));
        assert!(matches!(
            d.write_u64(base + 4, 0, OwnerTag::new(1)),
            Err(DramError::Misaligned { required: 8, .. })
        ));
    }

    #[test]
    fn out_of_range_access_is_rejected() {
        let mut d = dram();
        let below = PhysAddr::new(0x1000);
        assert!(matches!(
            d.read_u8(below),
            Err(DramError::OutOfRange { .. })
        ));
        let end = d.config().end();
        assert!(matches!(
            d.write_u32(end, 1, OwnerTag::new(1)),
            Err(DramError::OutOfRange { .. })
        ));
        // Access straddling the end.
        let mut buf = [0u8; 8];
        assert!(d.read_bytes(end - 4, &mut buf).is_err());
    }

    #[test]
    fn ownership_tracking_and_retire() {
        let mut d = dram();
        let owner = OwnerTag::new(1391);
        let other = OwnerTag::new(2000);
        let base = d.config().base();
        d.write_bytes(base, &[0xAA; 64], owner).unwrap();
        d.write_bytes(base + PAGE_SIZE, &[0xBB; 64], other).unwrap();

        assert_eq!(d.frames_owned_by(owner).count(), 1);
        let rec = d.frame_ownership(base.frame_number()).unwrap();
        assert_eq!(rec.owner, owner);
        assert!(rec.live);

        assert_eq!(d.retire_owner(owner), 1);
        let rec = d.frame_ownership(base.frame_number()).unwrap();
        assert!(!rec.live);
        // Residue only reports the dead owner's frames.
        let residues: Vec<_> = d.residue_frames().collect();
        assert_eq!(residues.len(), 1);
        assert_eq!(residues[0].1, owner);
        assert_eq!(d.residue_bytes(), 64);
    }

    #[test]
    fn retire_is_idempotent_and_scoped() {
        let mut d = dram();
        let owner = OwnerTag::new(5);
        d.write_u8(d.config().base(), 1, owner).unwrap();
        assert_eq!(d.retire_owner(owner), 1);
        assert_eq!(d.retire_owner(owner), 0);
        assert_eq!(d.retire_owner(OwnerTag::new(99)), 0);
    }

    #[test]
    fn scrub_clears_data_and_ownership() {
        let mut d = dram();
        let owner = OwnerTag::new(1391);
        let base = d.config().base();
        d.fill(base, 2 * PAGE_SIZE, 0xFF, owner).unwrap();
        d.retire_owner(owner);
        assert!(d.residue_bytes() > 0);

        d.scrub_range(base, 2 * PAGE_SIZE).unwrap();
        assert_eq!(d.read_u8(base).unwrap(), 0);
        assert_eq!(d.read_u8(base + 2 * PAGE_SIZE - 1).unwrap(), 0);
        assert_eq!(d.residue_bytes(), 0);
        assert!(d.frame_ownership(base.frame_number()).is_none());
    }

    #[test]
    fn partial_scrub_keeps_frame_ownership() {
        let mut d = dram();
        let owner = OwnerTag::new(7);
        let base = d.config().base();
        d.fill(base, PAGE_SIZE, 0xFF, owner).unwrap();
        // Scrub only half the frame: data cleared, but the frame is still
        // attributed (it still holds the other half of the owner's bytes).
        d.scrub_range(base, PAGE_SIZE / 2).unwrap();
        assert_eq!(d.read_u8(base).unwrap(), 0);
        assert_eq!(d.read_u8(base + PAGE_SIZE - 1).unwrap(), 0xFF);
        assert!(d.frame_ownership(base.frame_number()).is_some());
    }

    #[test]
    fn zero_length_fill_and_scrub_are_rejected() {
        let mut d = dram();
        let base = d.config().base();
        assert!(matches!(
            d.fill(base, 0, 0xFF, OwnerTag::new(1)),
            Err(DramError::EmptyRange { .. })
        ));
        assert!(matches!(
            d.scrub_range(base, 0),
            Err(DramError::EmptyRange { .. })
        ));
        assert!(matches!(
            d.scrub_banks_parallel(base, 0, 4),
            Err(DramError::EmptyRange { .. })
        ));
        // Nothing was recorded for the rejected calls.
        assert_eq!(d.stats().bytes_written(), 0);
        assert_eq!(d.stats().bytes_scrubbed(), 0);
        assert_eq!(d.materialized_frames(), 0);
    }

    #[test]
    fn zero_worker_parallel_ops_are_rejected() {
        let mut d = dram();
        let base = d.config().base();
        d.fill(base, PAGE_SIZE, 0xEE, OwnerTag::new(1)).unwrap();
        assert!(matches!(
            d.scrub_banks_parallel(base, PAGE_SIZE, 0),
            Err(DramError::ZeroWorkers)
        ));
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        assert!(matches!(
            d.scrape_banks_parallel(base, &mut buf, 0),
            Err(DramError::ZeroWorkers)
        ));
        // The data survived the rejected scrub.
        assert_eq!(d.read_u8(base).unwrap(), 0xEE);
    }

    #[test]
    fn end_before_start_ranges_are_rejected() {
        // A caller computing `len = end - start` with wrapped arithmetic gets
        // a huge length; the window check must reject it rather than scrub an
        // unintended span.
        let mut d = dram();
        let start = d.config().base() + PAGE_SIZE;
        let wrapped = (0u64).wrapping_sub(PAGE_SIZE); // "end - start" underflow
        assert!(matches!(
            d.scrub_range(start, wrapped),
            Err(DramError::OutOfRange { .. }) | Err(DramError::LengthOverflow { .. })
        ));
        assert!(matches!(
            d.fill(start, wrapped, 0xAB, OwnerTag::new(1)),
            Err(DramError::OutOfRange { .. }) | Err(DramError::LengthOverflow { .. })
        ));
        // A length that overflows the address space itself.
        assert!(matches!(
            d.scrub_range(start, u64::MAX),
            Err(DramError::LengthOverflow { .. })
        ));
        assert!(matches!(
            d.scrub_banks_parallel(start, u64::MAX, 4),
            Err(DramError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn empty_bulk_copies_remain_harmless_noops() {
        // The bulk read/write paths (one shard lookup per touched stripe)
        // accept zero-length buffers: reading or writing nothing is
        // well-defined and callers (page loops) reach it naturally at range
        // edges.
        let mut d = dram();
        let base = d.config().base();
        d.write_bytes(base, &[], OwnerTag::new(1)).unwrap();
        let mut empty: [u8; 0] = [];
        d.read_bytes(base, &mut empty).unwrap();
        d.scrape_banks_parallel(base, &mut empty, 4).unwrap();
        assert_eq!(d.materialized_frames(), 0);
        assert!(d.frame_ownership(base.frame_number()).is_none());
        // At the last valid byte of the window, too.
        d.write_bytes(d.config().end() - 1, &[], OwnerTag::new(1))
            .unwrap();
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut d = dram();
        let base = d.config().base();
        d.write_bytes(base, &[1, 2, 3], OwnerTag::new(1)).unwrap();
        d.scrub_range(base, 3).unwrap();
        assert_eq!(d.stats().bytes_written(), 3);
        assert_eq!(d.stats().bytes_scrubbed(), 3);
        d.reset_stats();
        assert_eq!(d.stats().bytes_written(), 0);
    }

    #[test]
    fn parallel_scrub_matches_sequential_scrub_exactly() {
        let pattern = |d: &mut Dram| {
            let base = d.config().base();
            let owner = OwnerTag::new(42);
            let other = OwnerTag::new(77);
            // Victim data across several frames and bank stripes, plus a
            // live neighbour that must stay attributed.
            d.fill(base, 5 * PAGE_SIZE + 123, 0xEE, owner).unwrap();
            d.write_bytes(base + 7 * PAGE_SIZE, &[0xAB; 300], other)
                .unwrap();
            d.retire_owner(owner);
        };
        let mut serial = dram();
        pattern(&mut serial);
        let mut parallel = dram();
        pattern(&mut parallel);

        let base = serial.config().base();
        // Scrub a range that starts and ends mid-frame and mid-stripe.
        let start = base + 100;
        let len = 4 * PAGE_SIZE + 777;
        serial.scrub_range(start, len).unwrap();
        parallel.scrub_banks_parallel(start, len, 4).unwrap();

        let mut a = vec![0u8; 9 * PAGE_SIZE as usize];
        let mut b = vec![0u8; 9 * PAGE_SIZE as usize];
        serial.read_bytes(base, &mut a).unwrap();
        parallel.read_bytes(base, &mut b).unwrap();
        assert_eq!(a, b);
        assert_eq!(serial.residue_bytes(), parallel.residue_bytes());
        assert_eq!(
            serial.stats().bytes_scrubbed(),
            parallel.stats().bytes_scrubbed()
        );
        assert_eq!(serial.stats().scrub_ops(), parallel.stats().scrub_ops());
        for frame in 0..9u64 {
            let f = (base + frame * PAGE_SIZE).frame_number();
            assert_eq!(serial.frame_ownership(f), parallel.frame_ownership(f));
        }
        // Fan-out telemetry is the only difference.
        assert_eq!(serial.stats().parallel_scrub_ops(), 0);
        assert_eq!(parallel.stats().parallel_scrub_ops(), 1);
        assert_eq!(parallel.stats().peak_scrub_workers(), 4);
    }

    #[test]
    fn parallel_scrape_matches_sequential_read_exactly() {
        let mut d = dram();
        let base = d.config().base();
        let data: Vec<u8> = (0..6 * PAGE_SIZE + 991).map(|i| (i % 255) as u8).collect();
        d.write_bytes(base + 17, &data, OwnerTag::new(3)).unwrap();

        let len = 8 * PAGE_SIZE as usize;
        let mut serial = vec![0u8; len];
        d.read_bytes(base, &mut serial).unwrap();
        for workers in [1usize, 2, 3, 4, 7] {
            let mut parallel = vec![0u8; len];
            d.scrape_banks_parallel(base, &mut parallel, workers)
                .unwrap();
            assert_eq!(serial, parallel, "workers={workers}");
        }
        // Worker counts beyond the stripe count still cover the range.
        let mut tiny = vec![0u8; 10];
        d.scrape_banks_parallel(base + 5, &mut tiny, 64).unwrap();
        assert_eq!(tiny, serial[5..15]);
    }

    #[test]
    fn scrape_view_is_byte_identical_to_read_bytes() {
        let mut d = dram();
        let base = d.config().base();
        let data: Vec<u8> = (0..6 * PAGE_SIZE + 991).map(|i| (i % 255) as u8).collect();
        d.write_bytes(base + 17, &data, OwnerTag::new(3)).unwrap();
        let cases = [
            (0u64, 8 * PAGE_SIZE),
            (5, 3),
            (17, 4 * PAGE_SIZE + 100),
            (PAGE_SIZE - 1, 2),
            (123, 0),
        ];
        for (start, len) in cases {
            let mut owned = vec![0u8; len as usize];
            d.read_bytes(base + start, &mut owned).unwrap();
            let view = d.scrape_view(base + start, len).unwrap().unwrap();
            assert_eq!(view.len() as u64, len);
            assert_eq!(view.to_vec(), owned, "start={start} len={len}");
        }
        // The same range checks as the owned read apply.
        assert!(matches!(
            d.scrape_view(d.config().end(), 1),
            Err(DramError::OutOfRange { .. })
        ));
    }

    #[test]
    fn scrape_view_declines_under_decaying_remanence() {
        let mut d = dram();
        d.set_remanence(RemanenceModel::Exponential { half_life_ticks: 2 });
        let base = d.config().base();
        assert!(d.scrape_view(base, PAGE_SIZE).unwrap().is_none());
        d.set_remanence(RemanenceModel::Perfect);
        assert!(d.scrape_view(base, PAGE_SIZE).unwrap().is_some());
    }

    #[test]
    fn arena_memory_is_proportional_to_touched_stripes() {
        // A dense 64 KiB island in the 16 MiB window: the per-bank slabs
        // must cover (a slack multiple of) the island, not the window.
        let mut d = dram();
        let base = d.config().base();
        let island = 64 * 1024u64;
        d.fill(base + 4 * 1024 * 1024, island, 0xEE, OwnerTag::new(1))
            .unwrap();
        let arena = d.arena_bytes();
        assert!(arena >= island, "slabs must cover the written bytes");
        assert!(
            arena < d.config().capacity() / 16,
            "arena ({arena} B) must stay proportional to the touched region"
        );
        assert_eq!(
            d.materialized_stripes() as u64,
            island / d.stripe_bytes(),
            "presence counts exactly the written stripes"
        );
    }

    /// A device with decaying remanence, a retired victim and a live
    /// neighbour, for the decay-view tests below.
    fn decaying_dram(model: RemanenceModel) -> (Dram, PhysAddr, PhysAddr) {
        let mut d = dram();
        d.set_remanence(model);
        d.set_remanence_seed(0x5EED);
        let victim = OwnerTag::new(1391);
        let live = OwnerTag::new(77);
        let base = d.config().base();
        let neighbour = base + 4 * PAGE_SIZE;
        d.fill(base, 3 * PAGE_SIZE, 0xEE, victim).unwrap();
        d.fill(neighbour, PAGE_SIZE, 0xAB, live).unwrap();
        d.retire_owner(victim);
        (d, base, neighbour)
    }

    #[test]
    fn perfect_remanence_changes_nothing() {
        let (d, base, _) = decaying_dram(RemanenceModel::Perfect);
        let mut d = d;
        d.advance_remanence(1_000);
        assert_eq!(d.read_u8(base).unwrap(), 0xEE);
        let mut buf = vec![0u8; 3 * PAGE_SIZE as usize];
        d.read_bytes(base, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xEE));
        assert_eq!(d.residue_decay(None).bits_flipped, 0);
        assert_eq!(d.residue_decay(None).survival_rate(), 1.0);
    }

    #[test]
    fn residue_decays_over_logical_ticks_but_live_data_never_does() {
        let (mut d, base, neighbour) =
            decaying_dram(RemanenceModel::Exponential { half_life_ticks: 2 });
        // At the moment of termination nothing has decayed yet.
        let mut before = vec![0u8; 3 * PAGE_SIZE as usize];
        d.read_bytes(base, &mut before).unwrap();
        assert!(before.iter().all(|&b| b == 0xEE));

        d.advance_remanence(4);
        let mut after = vec![0u8; 3 * PAGE_SIZE as usize];
        d.read_bytes(base, &mut after).unwrap();
        let survivors = after.iter().filter(|&&b| b != 0).count();
        assert!(survivors > 0, "some residue survives two half-lives");
        assert!(
            survivors < after.len(),
            "some residue decays after two half-lives"
        );
        // Decayed bytes read zero; surviving bytes read raw.
        assert!(after.iter().all(|&b| b == 0 || b == 0xEE));

        // The live neighbour is untouched at every tick.
        let mut live = vec![0u8; PAGE_SIZE as usize];
        d.read_bytes(neighbour, &mut live).unwrap();
        assert!(live.iter().all(|&b| b == 0xAB));

        // The raw store never mutated: ground-truth residue is still intact.
        assert_eq!(d.residue_bytes(), 3 * PAGE_SIZE);
        let decay = d.residue_decay(Some(OwnerTag::new(1391)));
        assert_eq!(decay.raw_bytes, 3 * PAGE_SIZE);
        assert_eq!(decay.surviving_bytes, survivors as u64);
        assert!(decay.bits_flipped > 0);
        assert!(decay.survival_rate() < 1.0);
    }

    #[test]
    fn decay_is_monotone_and_creates_no_bits() {
        let (mut d, base, _) = decaying_dram(RemanenceModel::BitFlip { rate_ppm: 150_000 });
        let len = 3 * PAGE_SIZE as usize;
        let mut previous = vec![0u8; len];
        d.read_bytes(base, &mut previous).unwrap();
        for _ in 0..5 {
            d.advance_remanence(3);
            let mut now = vec![0u8; len];
            d.read_bytes(base, &mut now).unwrap();
            for (n, p) in now.iter().zip(&previous) {
                assert_eq!(n & p, *n, "bits only ever discharge");
            }
            previous = now;
        }
    }

    #[test]
    fn decayed_parallel_scrape_is_byte_identical_to_sequential() {
        for model in [
            RemanenceModel::Exponential { half_life_ticks: 3 },
            RemanenceModel::BitFlip { rate_ppm: 300_000 },
        ] {
            let (mut d, base, _) = decaying_dram(model);
            d.advance_remanence(5);
            let len = 6 * PAGE_SIZE as usize;
            let mut serial = vec![0u8; len];
            d.read_bytes(base, &mut serial).unwrap();
            for workers in [1usize, 2, 3, 4, 7] {
                let mut parallel = vec![0u8; len];
                d.scrape_banks_parallel(base, &mut parallel, workers)
                    .unwrap();
                assert_eq!(serial, parallel, "{model} workers={workers}");
            }
        }
    }

    #[test]
    fn rewriting_residue_resets_its_decay_epoch() {
        let (mut d, base, _) = decaying_dram(RemanenceModel::Exponential { half_life_ticks: 1 });
        d.advance_remanence(64);
        // Long after termination everything has decayed away...
        assert_eq!(d.residue_decay(None).surviving_bytes, 0);
        // ...but a new owner writing the frame gets its own data back raw,
        // and a fresh retirement decays from the *new* origin, not the old.
        let successor = OwnerTag::new(2000);
        d.fill(base, PAGE_SIZE, 0xC4, successor).unwrap();
        assert_eq!(d.read_u8(base).unwrap(), 0xC4);
        d.retire_owner(successor);
        assert_eq!(d.read_u8(base).unwrap(), 0xC4, "no ticks elapsed yet");
        let fresh = d.residue_decay(Some(successor));
        assert_eq!(fresh.surviving_bytes, fresh.raw_bytes);
    }

    #[test]
    fn decay_epoch_resets_even_when_stripes_are_larger_than_frames() {
        // Regression: with a row larger than a page (stripe > frame), the
        // decay state used to be keyed per stripe and the stale origin of a
        // long-dead victim was never cleared when a successor re-owned the
        // frame — so the successor's *fresh* residue read as fully decayed.
        // Decay state is granule-keyed (stripe clipped to a frame), making
        // the epoch reset exact in every geometry.
        use crate::config::DdrGeometry;
        let config = DramConfig::custom(
            PhysAddr::new(0x6_0000_0000),
            8 * 1024 * 1024,
            DdrGeometry {
                column_bits: 13, // 8 KiB rows: one stripe spans two frames
                bank_bits: 1,
                bank_group_bits: 1,
                row_bits: 8,
                rank_bits: 0,
            },
        );
        let mut d = Dram::new(config);
        assert!(d.stripe_bytes() > PAGE_SIZE);
        d.set_remanence(RemanenceModel::Exponential { half_life_ticks: 1 });
        d.set_remanence_seed(7);
        let base = d.config().base();
        let victim = OwnerTag::new(1391);
        d.fill(base, 2 * PAGE_SIZE, 0xEE, victim).unwrap();
        d.retire_owner(victim);
        d.advance_remanence(64);
        assert_eq!(d.residue_decay(None).surviving_bytes, 0);

        // A successor re-owns only the stripe's first frame and terminates
        // immediately: its residue must read fully intact (fresh epoch)...
        let successor = OwnerTag::new(2000);
        d.fill(base, PAGE_SIZE, 0xC4, successor).unwrap();
        d.retire_owner(successor);
        assert_eq!(d.read_u8(base).unwrap(), 0xC4);
        let fresh = d.residue_decay(Some(successor));
        assert_eq!(fresh.surviving_bytes, fresh.raw_bytes);
        assert_eq!(fresh.raw_bytes, PAGE_SIZE);
        // ...while the victim's other frame in the same stripe keeps its old
        // epoch and stays decayed away.
        assert_eq!(d.residue_decay(Some(victim)).surviving_bytes, 0);
        assert_eq!(d.read_u8(base + PAGE_SIZE).unwrap(), 0);
    }

    #[test]
    fn scrubbing_residue_clears_its_decay_state() {
        let (mut d, base, _) = decaying_dram(RemanenceModel::BitFlip { rate_ppm: 500_000 });
        d.advance_remanence(2);
        assert!(d.residue_decay(None).bits_flipped > 0);
        d.scrub_range(base, 3 * PAGE_SIZE).unwrap();
        let after = d.residue_decay(None);
        assert_eq!(after, ResidueDecay::default());
        assert_eq!(after.survival_rate(), 1.0);
    }

    #[test]
    fn remanence_accessors_and_defaults() {
        let mut d = dram();
        assert_eq!(d.remanence(), RemanenceModel::Perfect);
        assert_eq!(d.remanence_tick(), 0);
        d.set_remanence(RemanenceModel::Exponential { half_life_ticks: 9 });
        d.advance_remanence(3);
        d.advance_remanence(4);
        assert_eq!(
            d.remanence(),
            RemanenceModel::Exponential { half_life_ticks: 9 }
        );
        assert_eq!(d.remanence_tick(), 7);
    }

    #[test]
    fn owner_tag_display_and_conversion() {
        let tag = OwnerTag::from(42u32);
        assert_eq!(tag.as_u32(), 42);
        assert_eq!(tag.to_string(), "owner:42");
    }

    #[test]
    fn frame_ownership_outside_window_is_none() {
        let d = dram();
        assert!(d.frame_ownership(FrameNumber::new(0)).is_none());
    }

    proptest! {
        #[test]
        fn prop_write_read_roundtrip(offset in 0u64..(16*1024*1024 - 64), data in proptest::collection::vec(any::<u8>(), 1..64)) {
            let mut d = dram();
            let addr = d.config().base() + offset;
            d.write_bytes(addr, &data, OwnerTag::new(1)).unwrap();
            let mut back = vec![0u8; data.len()];
            d.read_bytes(addr, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }

        #[test]
        fn prop_u32_roundtrip_little_endian(offset in (0u64..(16*1024*1024/4 - 1)).prop_map(|o| o * 4), value in any::<u32>()) {
            let mut d = dram();
            let addr = d.config().base() + offset;
            d.write_u32(addr, value, OwnerTag::new(1)).unwrap();
            prop_assert_eq!(d.read_u32(addr).unwrap(), value);
            // Byte-level view agrees with LE encoding.
            let mut bytes = [0u8; 4];
            d.read_bytes(addr, &mut bytes).unwrap();
            prop_assert_eq!(bytes, value.to_le_bytes());
        }

        #[test]
        fn prop_scrub_always_zeroes(offset in 0u64..(16*1024*1024 - 256), len in 1u64..256) {
            let mut d = dram();
            let addr = d.config().base() + offset;
            d.fill(addr, len, 0xEE, OwnerTag::new(3)).unwrap();
            d.scrub_range(addr, len).unwrap();
            let mut back = vec![0u8; len as usize];
            d.read_bytes(addr, &mut back).unwrap();
            prop_assert!(back.iter().all(|&b| b == 0));
        }

        #[test]
        fn prop_parallel_scrub_equals_sequential(offset in 0u64..(16*1024*1024 - 64*1024), len in 1u64..(64*1024), workers in 1usize..9) {
            let mut serial = dram();
            let mut parallel = dram();
            let addr = serial.config().base() + offset;
            for d in [&mut serial, &mut parallel] {
                d.fill(addr, len, 0xD7, OwnerTag::new(11)).unwrap();
                d.retire_owner(OwnerTag::new(11));
            }
            serial.scrub_range(addr, len).unwrap();
            parallel.scrub_banks_parallel(addr, len, workers).unwrap();
            let mut a = vec![0u8; len as usize];
            let mut b = vec![0u8; len as usize];
            serial.read_bytes(addr, &mut a).unwrap();
            parallel.read_bytes(addr, &mut b).unwrap();
            prop_assert_eq!(a, b);
            prop_assert_eq!(serial.residue_bytes(), parallel.residue_bytes());
        }

        #[test]
        fn prop_parallel_scrape_equals_sequential(offset in 0u64..(16*1024*1024 - 64*1024), len in 1usize..(64*1024), workers in 1usize..9) {
            let mut d = dram();
            let addr = d.config().base() + offset;
            d.fill(addr, (len as u64).max(8), 0x5C, OwnerTag::new(2)).unwrap();
            let mut serial = vec![0u8; len];
            let mut parallel = vec![0u8; len];
            d.read_bytes(addr, &mut serial).unwrap();
            d.scrape_banks_parallel(addr, &mut parallel, workers).unwrap();
            prop_assert_eq!(serial, parallel);
        }
    }
}
