//! The abstract interpreter: symbolic residue flow over the lifecycle trace.
//!
//! Each of the four [`Channel`]s carries an abstract residue state through
//! the trace — `Empty` (no residue can exist), `Raw` (residue provably
//! persists, bit-exact), `Bounded` (residue may persist but a lifecycle edge
//! bounds what is readable).  The states map onto the verdict lattice
//! one-to-one: `Empty → Scrubbed`, `Bounded → DecayBounded`, `Raw → Leaks`.
//!
//! Every transfer that changes a channel's state appends a provenance line
//! (`"event: explanation"`) to that channel, so a verdict is always
//! accompanied by the lifecycle edge that caused it — the analyzer never
//! says "leaks" without saying *through which edge*.
//!
//! The transfer rules are grounded in the kernel model's semantics (see the
//! per-rule comments); the soundness harness in `tests/soundness.rs` proves
//! the binding verdicts against the dynamic campaign engine over the whole
//! shipped audit matrix.

use zynq_dram::{RemanenceModel, SanitizePolicy};

use crate::lattice::{Channel, Verdict};
use crate::model::{LifecycleEvent, ScenarioShape};

/// Abstract residue content of one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Residue {
    /// No residue can exist in this channel.
    Empty,
    /// Bit-exact residue provably persists.
    Raw,
    /// Residue may persist; a lifecycle edge bounds what is readable.
    Bounded,
}

impl Residue {
    fn verdict(self) -> Verdict {
        match self {
            Residue::Empty => Verdict::Scrubbed,
            Residue::Bounded => Verdict::DecayBounded,
            Residue::Raw => Verdict::Leaks,
        }
    }
}

/// How much of the *freed DRAM frames* a sanitize policy provably clears at
/// termination.  Swap coverage is a separate axis
/// ([`SanitizePolicy::scrubs_swap`]); CoW-retained frames are outside every
/// policy's reach by construction (they are never freed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameCoverage {
    /// Every freed frame is cleared before reuse.
    Full,
    /// Only whole DRAM rows are cleared; frames whose rows straddle other
    /// owners keep sub-row residue.
    Partial,
    /// Clearing is scheduled but has not run when the scrape lands.
    Deferred,
    /// Freed frames are never touched.
    None,
    /// A policy this analyzer has no transfer rule for (`SanitizePolicy` is
    /// non-exhaustive): no binding claim either way.
    Unknown,
}

fn frame_coverage(policy: SanitizePolicy) -> FrameCoverage {
    match policy {
        SanitizePolicy::ZeroOnFree
        | SanitizePolicy::RowClone
        | SanitizePolicy::SelectiveScrub
        | SanitizePolicy::ZeroOnFreeSwap => FrameCoverage::Full,
        SanitizePolicy::RowReset => FrameCoverage::Partial,
        SanitizePolicy::Background { .. } => FrameCoverage::Deferred,
        SanitizePolicy::None | SanitizePolicy::SwapScrub => FrameCoverage::None,
        _ => FrameCoverage::Unknown,
    }
}

/// One channel's final verdict plus the lifecycle edges that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelFlow {
    /// The channel's place on the verdict lattice.
    pub verdict: Verdict,
    /// `"event: explanation"` lines, in trace order.
    pub provenance: Vec<String>,
}

/// The complete static analysis of one scenario shape.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// The shape that was analyzed.
    pub shape: ScenarioShape,
    /// Per-channel verdicts, in [`Channel::ALL`] order.
    flows: [ChannelFlow; 4],
}

impl Analysis {
    /// The verdict and provenance of one channel.
    pub fn channel(&self, channel: Channel) -> &ChannelFlow {
        let index = Channel::ALL
            .iter()
            .position(|&c| c == channel)
            .expect("Channel::ALL is total");
        self.flows.get(index).expect("flows mirror Channel::ALL")
    }

    /// Iterates `(channel, flow)` pairs in report order.
    pub fn channels(&self) -> impl Iterator<Item = (Channel, &ChannelFlow)> {
        Channel::ALL.iter().copied().zip(self.flows.iter())
    }

    /// The join of all channel verdicts: the scenario's worst-case exposure.
    pub fn overall(&self) -> Verdict {
        self.flows
            .iter()
            .fold(Verdict::Scrubbed, |acc, flow| acc.join(flow.verdict))
    }

    /// Whether every channel is [`Verdict::Scrubbed`] — the strongest claim:
    /// the attacker recovers nothing, through any substrate.
    pub fn fully_scrubbed(&self) -> bool {
        self.overall() == Verdict::Scrubbed
    }
}

/// Interpreter state for one channel.
#[derive(Debug, Clone)]
struct ChannelState {
    residue: Residue,
    provenance: Vec<String>,
}

impl ChannelState {
    fn new() -> Self {
        ChannelState {
            residue: Residue::Empty,
            provenance: Vec::new(),
        }
    }

    fn set(&mut self, residue: Residue, line: String) {
        self.residue = residue;
        self.provenance.push(line);
    }

    fn into_flow(self) -> ChannelFlow {
        ChannelFlow {
            verdict: self.residue.verdict(),
            provenance: self.provenance,
        }
    }
}

/// Runs the abstract interpreter over `shape`'s lifecycle trace.
///
/// Total over every constructible shape: all policies, schedules, scrape
/// modes, remanence models and swap pressures analyze to a verdict — there
/// is no "unknown" escape hatch.
pub fn analyze(shape: &ScenarioShape) -> Analysis {
    let policy = shape.policy;
    let coverage = frame_coverage(policy);
    let decays = shape.remanence != RemanenceModel::Perfect;

    let mut dram = ChannelState::new();
    let mut swap = ChannelState::new();
    let mut cow = ChannelState::new();
    let mut pid = ChannelState::new();

    // Facts accumulated before termination: whether swap slots exist and
    // whether CoW children pin the victim's frames when it dies.
    let mut swap_populated = false;
    let mut cow_pinned = false;

    for event in shape.trace() {
        match event {
            LifecycleEvent::Spawn | LifecycleEvent::WriteHeap => {
                // Live victim data is not residue; no channel moves.
            }
            LifecycleEvent::SwapOut { pressure } => {
                swap_populated = true;
                swap.provenance.push(format!(
                    "swap-out: {pressure}% of the victim heap compressed into swap slots"
                ));
            }
            LifecycleEvent::Fork { children } => {
                cow_pinned = true;
                cow.provenance.push(format!(
                    "fork: {children} still-running children share every victim frame copy-on-write"
                ));
            }
            LifecycleEvent::Terminate => {
                // DRAM frames: CoW retention trumps the policy — frames the
                // children pin are never freed, so the scrub never sees them
                // and they never become free-list residue.
                if cow_pinned {
                    cow.set(
                        Residue::Raw,
                        "terminate: the kernel retains the shared frames for the children — \
                         frame-oriented scrubbing never touches them"
                            .into(),
                    );
                    dram.set(
                        Residue::Empty,
                        "terminate: every victim frame stays allocated to the CoW children; \
                         none returns to the free list as residue"
                            .into(),
                    );
                } else {
                    match coverage {
                        FrameCoverage::Full => dram.set(
                            Residue::Empty,
                            format!("terminate: {policy} clears every freed frame before reuse"),
                        ),
                        FrameCoverage::Partial => dram.set(
                            Residue::Raw,
                            format!(
                                "terminate: {policy} resets whole rows only — frames whose rows \
                                 straddle other owners keep sub-row residue"
                            ),
                        ),
                        FrameCoverage::Deferred => dram.set(
                            Residue::Raw,
                            format!(
                                "terminate: {policy} has not fired when the scrape lands — \
                                 the freed frames are still raw"
                            ),
                        ),
                        FrameCoverage::None => dram.set(
                            Residue::Raw,
                            format!("terminate: {policy} never touches freed frames"),
                        ),
                        FrameCoverage::Unknown => dram.set(
                            Residue::Bounded,
                            format!(
                                "terminate: {policy} has no audited coverage rule — \
                                 residue extent unknown, no binding claim"
                            ),
                        ),
                    }
                }
                // Swap slots: only the swap-aware policies reach them.
                if swap_populated {
                    if policy.scrubs_swap() {
                        swap.set(
                            Residue::Empty,
                            format!("terminate: {policy} scrubs the swap slots"),
                        );
                    } else {
                        swap.set(
                            Residue::Raw,
                            format!(
                                "terminate: {policy} is frame-oriented — the compressed \
                                 slots survive in the swap store"
                            ),
                        );
                    }
                }
            }
            LifecycleEvent::Revive {
                successors,
                reuse_pid,
            } => {
                // The successor inherits whatever the freed frames hold at
                // allocation time; with analog decay between termination and
                // that first read, a raw inheritance weakens to bounded.
                let pid_suffix = if reuse_pid { " and its pid" } else { "" };
                match dram.residue {
                    Residue::Raw if !decays => pid.set(
                        Residue::Raw,
                        format!(
                            "revive: the successor re-allocates the victim's frames{pid_suffix} \
                             and reads raw residue at first touch"
                        ),
                    ),
                    Residue::Raw | Residue::Bounded => pid.set(
                        Residue::Bounded,
                        format!(
                            "revive: the successor re-allocates the victim's frames{pid_suffix}; \
                             the residue it inherits is bounded, not bit-exact"
                        ),
                    ),
                    Residue::Empty => pid.set(
                        Residue::Empty,
                        "revive: the frames were cleared at termination — the successor \
                         inherits zeroes"
                            .into(),
                    ),
                }
                // Whatever the attacker scrapes afterwards has been partly
                // overwritten by the successors' own heap images.
                if dram.residue == Residue::Raw {
                    dram.set(
                        Residue::Bounded,
                        format!(
                            "revive: {successors} successor heap image(s) overwrite an \
                             unpredictable share of the residue before the scrape"
                        ),
                    );
                }
            }
            LifecycleEvent::Churn { churn_rate } => {
                if dram.residue == Residue::Raw {
                    dram.set(
                        Residue::Bounded,
                        format!(
                            "churn: live tenants re-allocate freed frames {churn_rate} time(s) \
                             per scraped chunk while the read is in flight"
                        ),
                    );
                }
            }
            LifecycleEvent::Scrape => {
                // Analog remanence decays the DRAM read; the swap store is a
                // compressed software structure and the CoW / inheritance
                // measures are structural frame counts, so only the DRAM
                // channel weakens here.
                if decays && dram.residue == Residue::Raw {
                    dram.set(
                        Residue::Bounded,
                        format!(
                            "scrape: analog remanence decay ({}) bounds how much of the raw \
                             residue is still readable",
                            shape.remanence
                        ),
                    );
                }
            }
        }
    }

    // Channels the trace never exercised explain themselves.
    if !swap_populated {
        swap.provenance
            .push("swap disabled on this board: no slots ever exist".into());
    }
    if !cow_pinned {
        cow.provenance.push(format!(
            "schedule {}: no fork, so nothing is CoW-retained",
            shape.schedule
        ));
    }
    if pid.provenance.is_empty() {
        pid.provenance.push(format!(
            "schedule {}: no revival, so no successor allocates the victim's frames",
            shape.schedule
        ));
    }

    Analysis {
        shape: shape.clone(),
        flows: [
            dram.into_flow(),
            swap.into_flow(),
            cow.into_flow(),
            pid.into_flow(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msa_core::VictimSchedule;

    #[test]
    fn unsanitized_single_victim_leaks_through_dram_only() {
        let analysis = analyze(&ScenarioShape::new(SanitizePolicy::None));
        assert_eq!(
            analysis.channel(Channel::DramFrames).verdict,
            Verdict::Leaks
        );
        assert_eq!(
            analysis.channel(Channel::SwapSlots).verdict,
            Verdict::Scrubbed
        );
        assert_eq!(
            analysis.channel(Channel::CowFrames).verdict,
            Verdict::Scrubbed
        );
        assert_eq!(
            analysis.channel(Channel::PidReuse).verdict,
            Verdict::Scrubbed
        );
        assert_eq!(analysis.overall(), Verdict::Leaks);
        assert!(!analysis.fully_scrubbed());
    }

    #[test]
    fn zero_on_free_swap_scrubs_every_channel_under_pressure() {
        let analysis = analyze(&ScenarioShape::new(SanitizePolicy::ZeroOnFreeSwap).with_swap(100));
        assert!(analysis.fully_scrubbed());
        // The swap channel explains both the population and the scrub.
        let swap = analysis.channel(Channel::SwapSlots);
        assert_eq!(swap.provenance.len(), 2);
    }

    #[test]
    fn zero_on_free_moves_the_leak_into_swap_under_pressure() {
        let analysis = analyze(&ScenarioShape::new(SanitizePolicy::ZeroOnFree).with_swap(100));
        assert_eq!(
            analysis.channel(Channel::DramFrames).verdict,
            Verdict::Scrubbed
        );
        assert_eq!(analysis.channel(Channel::SwapSlots).verdict, Verdict::Leaks);
        assert_eq!(analysis.overall(), Verdict::Leaks);
    }

    #[test]
    fn swap_scrub_closes_swap_but_not_frames() {
        let analysis = analyze(&ScenarioShape::new(SanitizePolicy::SwapScrub).with_swap(100));
        assert_eq!(
            analysis.channel(Channel::SwapSlots).verdict,
            Verdict::Scrubbed
        );
        assert_eq!(
            analysis.channel(Channel::DramFrames).verdict,
            Verdict::Leaks
        );
    }

    #[test]
    fn fork_heavy_retention_defeats_even_full_coverage() {
        let analysis = analyze(
            &ScenarioShape::new(SanitizePolicy::ZeroOnFree)
                .with_schedule(VictimSchedule::ForkHeavy { children: 2 }),
        );
        assert_eq!(analysis.channel(Channel::CowFrames).verdict, Verdict::Leaks);
        assert_eq!(
            analysis.channel(Channel::DramFrames).verdict,
            Verdict::Scrubbed
        );
        assert_eq!(analysis.overall(), Verdict::Leaks);
    }

    #[test]
    fn revival_inherits_raw_residue_and_bounds_the_scrape() {
        let analysis = analyze(&ScenarioShape::new(SanitizePolicy::None).with_schedule(
            VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            },
        ));
        assert_eq!(analysis.channel(Channel::PidReuse).verdict, Verdict::Leaks);
        assert_eq!(
            analysis.channel(Channel::DramFrames).verdict,
            Verdict::DecayBounded
        );
    }

    #[test]
    fn revival_after_full_coverage_inherits_nothing() {
        let analysis = analyze(
            &ScenarioShape::new(SanitizePolicy::SelectiveScrub).with_schedule(
                VictimSchedule::Revival {
                    successors: 1,
                    reuse_pid: true,
                },
            ),
        );
        assert!(analysis.fully_scrubbed());
    }

    #[test]
    fn analog_decay_downgrades_raw_dram_to_bounded() {
        let analysis = analyze(
            &ScenarioShape::new(SanitizePolicy::None)
                .with_remanence(RemanenceModel::Exponential { half_life_ticks: 1 }),
        );
        assert_eq!(
            analysis.channel(Channel::DramFrames).verdict,
            Verdict::DecayBounded
        );
        // ...but a scrubbed channel stays scrubbed: there is nothing to decay.
        let scrubbed = analyze(
            &ScenarioShape::new(SanitizePolicy::ZeroOnFree)
                .with_remanence(RemanenceModel::Exponential { half_life_ticks: 1 }),
        );
        assert!(scrubbed.fully_scrubbed());
    }

    #[test]
    fn churn_bounds_the_dram_channel() {
        let analysis = analyze(&ScenarioShape::new(SanitizePolicy::None).with_schedule(
            VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 1,
            },
        ));
        assert_eq!(
            analysis.channel(Channel::DramFrames).verdict,
            Verdict::DecayBounded
        );
    }

    #[test]
    fn every_verdict_carries_provenance() {
        for policy in [
            SanitizePolicy::None,
            SanitizePolicy::RowReset,
            SanitizePolicy::Background { delay_ticks: 1000 },
            SanitizePolicy::ZeroOnFreeSwap,
        ] {
            let analysis = analyze(&ScenarioShape::new(policy).with_swap(50));
            for (channel, flow) in analysis.channels() {
                assert!(
                    !flow.provenance.is_empty(),
                    "{policy}/{channel}: verdict {} has no provenance",
                    flow.verdict
                );
            }
        }
    }
}
