//! The scenario shape the analyzer reasons over, and the kernel lifecycle
//! trace it abstracts each shape into.
//!
//! A [`ScenarioShape`] is the analyzer's view of a campaign cell: exactly the
//! configuration axes that determine where residue can flow — sanitize
//! policy, victim schedule, scrape mode, remanence model and the board's
//! swap pressure.  Axes that only affect *whether the attack runs at all*
//! (isolation) or *which bytes the victim holds* (model, input, ASLR,
//! allocation order) do not change residue flow and are deliberately absent,
//! which is what lets one static verdict cover a whole slice of the dynamic
//! matrix.
//!
//! [`ScenarioShape::trace`] lowers the shape to the ordered
//! [`LifecycleEvent`] sequence the kernel model executes: spawn, heap write,
//! optional swap-out, optional fork, terminate, optional revival, optional
//! live-traffic churn, scrape.  The abstract interpreter in [`crate::flow`]
//! walks this trace.

use msa_core::campaign::CampaignCell;
use msa_core::{ScrapeMode, VictimSchedule};
use zynq_dram::{RemanenceModel, SanitizePolicy};

/// The residue-relevant projection of one campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioShape {
    /// End-of-process sanitization the kernel applies.
    pub policy: SanitizePolicy,
    /// Victim-traffic schedule around the termination.
    pub schedule: VictimSchedule,
    /// The attacker's scraping strategy.
    pub scrape: ScrapeMode,
    /// Analog DRAM remanence decay model.
    pub remanence: RemanenceModel,
    /// Percentage of the victim heap swapped out before termination
    /// (`0` = swap disabled).
    pub swap_pressure: u8,
}

impl ScenarioShape {
    /// The default shape: single victim, no swap, perfect remanence,
    /// contiguous scrape, no sanitization.
    pub fn new(policy: SanitizePolicy) -> Self {
        ScenarioShape {
            policy,
            schedule: VictimSchedule::Single,
            scrape: ScrapeMode::ContiguousRange,
            remanence: RemanenceModel::Perfect,
            swap_pressure: 0,
        }
    }

    /// Builder: victim schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: VictimSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Builder: scrape mode.
    #[must_use]
    pub fn with_scrape(mut self, scrape: ScrapeMode) -> Self {
        self.scrape = scrape;
        self
    }

    /// Builder: remanence model.
    #[must_use]
    pub fn with_remanence(mut self, remanence: RemanenceModel) -> Self {
        self.remanence = remanence;
        self
    }

    /// Builder: swap pressure (clamped to 100, like the board knob).
    #[must_use]
    pub fn with_swap(mut self, pressure: u8) -> Self {
        self.swap_pressure = pressure.min(100);
        self
    }

    /// Projects a fully resolved campaign cell onto its residue-relevant
    /// shape — the bridge the soundness harness crosses to compare a static
    /// verdict with the cell's dynamic metrics.
    pub fn of_cell(cell: &CampaignCell) -> Self {
        ScenarioShape {
            policy: cell.sanitize,
            schedule: cell.schedule,
            scrape: cell.scrape_mode,
            remanence: cell.remanence,
            swap_pressure: cell.board.swap_pressure(),
        }
    }

    /// Lowers the shape to the kernel lifecycle trace the abstract
    /// interpreter walks.  The order is the order the campaign engine
    /// executes the scenario in; every event that can move residue between
    /// substrates appears exactly once.
    pub fn trace(&self) -> Vec<LifecycleEvent> {
        let mut events = vec![LifecycleEvent::Spawn, LifecycleEvent::WriteHeap];
        if self.swap_pressure > 0 {
            events.push(LifecycleEvent::SwapOut {
                pressure: self.swap_pressure,
            });
        }
        if let VictimSchedule::ForkHeavy { children } = self.schedule {
            events.push(LifecycleEvent::Fork { children });
        }
        events.push(LifecycleEvent::Terminate);
        if let VictimSchedule::Revival {
            successors,
            reuse_pid,
        } = self.schedule
        {
            events.push(LifecycleEvent::Revive {
                successors,
                reuse_pid,
            });
        }
        if let VictimSchedule::LiveTraffic { churn_rate, .. } = self.schedule {
            if churn_rate > 0 {
                events.push(LifecycleEvent::Churn { churn_rate });
            }
        }
        events.push(LifecycleEvent::Scrape);
        events
    }
}

/// One edge of the kernel lifecycle model, in execution order.
///
/// `SequentialTraffic` and `MultiTenant` schedules add no event: predecessor
/// processes run *before* the victim spawns and a co-resident tenant's data
/// is not the victim's residue, so neither moves the victim's bytes between
/// substrates after termination — the edge set below is the complete
/// residue-flow alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleEvent {
    /// The victim process is created; every channel starts empty.
    Spawn,
    /// The victim writes its heap image (model weights, input) into DRAM.
    WriteHeap,
    /// The kernel compresses `pressure`% of the victim's cold heap pages
    /// into the swap store.
    SwapOut {
        /// Percentage of heap pages swapped out.
        pressure: u8,
    },
    /// The victim forks `children` processes that share its frames
    /// copy-on-write and stay running.
    Fork {
        /// Still-running CoW children at termination.
        children: usize,
    },
    /// The victim terminates; the configured sanitize policy runs over
    /// whatever frames actually return to the free list.
    Terminate,
    /// `successors` new processes re-allocate the victim's freed frames
    /// (and with `reuse_pid`, its pid) before the scrape.
    Revive {
        /// Successor processes launched before the scrape.
        successors: usize,
        /// Whether the first successor reuses the victim's pid.
        reuse_pid: bool,
    },
    /// Live tenant churn re-allocates freed frames while the scrape is in
    /// flight.
    Churn {
        /// Churn events between consecutive scraped chunks.
        churn_rate: usize,
    },
    /// The attacker reads physical memory (and overlays surviving swap
    /// slots); analog remanence decay applies to this read.
    Scrape,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_schedule_traces_to_the_minimal_sequence() {
        let shape = ScenarioShape::new(SanitizePolicy::None);
        assert_eq!(
            shape.trace(),
            vec![
                LifecycleEvent::Spawn,
                LifecycleEvent::WriteHeap,
                LifecycleEvent::Terminate,
                LifecycleEvent::Scrape,
            ]
        );
    }

    #[test]
    fn every_optional_edge_appears_when_configured() {
        let shape = ScenarioShape::new(SanitizePolicy::ZeroOnFree)
            .with_swap(100)
            .with_schedule(VictimSchedule::ForkHeavy { children: 2 });
        assert_eq!(
            shape.trace(),
            vec![
                LifecycleEvent::Spawn,
                LifecycleEvent::WriteHeap,
                LifecycleEvent::SwapOut { pressure: 100 },
                LifecycleEvent::Fork { children: 2 },
                LifecycleEvent::Terminate,
                LifecycleEvent::Scrape,
            ]
        );

        let revival =
            ScenarioShape::new(SanitizePolicy::None).with_schedule(VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            });
        assert_eq!(
            revival.trace(),
            vec![
                LifecycleEvent::Spawn,
                LifecycleEvent::WriteHeap,
                LifecycleEvent::Terminate,
                LifecycleEvent::Revive {
                    successors: 1,
                    reuse_pid: true,
                },
                LifecycleEvent::Scrape,
            ]
        );

        let live =
            ScenarioShape::new(SanitizePolicy::None).with_schedule(VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 1,
            });
        assert!(live
            .trace()
            .contains(&LifecycleEvent::Churn { churn_rate: 1 }));
    }

    #[test]
    fn zero_churn_live_traffic_adds_no_churn_edge() {
        let shape =
            ScenarioShape::new(SanitizePolicy::None).with_schedule(VictimSchedule::LiveTraffic {
                tenants: 2,
                churn_rate: 0,
            });
        assert!(!shape
            .trace()
            .iter()
            .any(|e| matches!(e, LifecycleEvent::Churn { .. })));
    }

    #[test]
    fn swap_pressure_clamps_like_the_board_knob() {
        assert_eq!(
            ScenarioShape::new(SanitizePolicy::None)
                .with_swap(250)
                .swap_pressure,
            100
        );
    }
}
