//! `msa-analyze` — emit the static residue-flow verdict matrix.
//!
//! Prints the verdict table for the shipped audit matrix to stdout and
//! writes the machine-readable `ANALYSIS.json` (schema `msa-analyzer-v1`)
//! next to the invocation.  The write notice goes to stderr so the stdout
//! table stays golden-pinnable.
//!
//! ```text
//! cargo run -p msa-analyzer --bin msa-analyze             # table + ANALYSIS.json
//! cargo run -p msa-analyzer --bin msa-analyze -- --out=path/to.json
//! ```

use msa_analyzer::AuditReport;

fn main() {
    let mut out = String::from("ANALYSIS.json");
    for arg in std::env::args().skip(1) {
        if let Some(path) = arg.strip_prefix("--out=") {
            out = path.to_string();
        } else {
            eprintln!("error: unknown flag `{arg}`");
            eprintln!("usage: msa-analyze [--out=PATH]");
            std::process::exit(2);
        }
    }

    let report = AuditReport::generate();
    println!("=== ANALYZE: static residue-flow verdicts over the shipped audit matrix ===");
    print!("{}", report.render_table());
    let (scrubbed, bounded, leaks) = report.verdict_counts();
    println!(
        "{} cells: {scrubbed} scrubbed, {bounded} decay-bounded, {leaks} leak",
        report.cells().len()
    );

    if let Err(error) = std::fs::write(&out, report.to_json()) {
        eprintln!("error: cannot write {out}: {error}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
