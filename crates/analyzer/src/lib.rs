//! # msa-analyzer — static residue-flow analysis for the MSA reproduction
//!
//! A small abstract interpreter over the kernel lifecycle model: given a
//! scenario configuration (sanitize policy, victim schedule, scrape mode,
//! remanence model, swap pressure), it symbolically tracks each residue
//! channel — freed DRAM frames, compressed swap slots, CoW-retained frames,
//! pid-reuse inheritance — through the spawn / write / swap-out / fork /
//! terminate / revive / churn / scrape lifecycle and judges each channel on
//! a three-point verdict lattice:
//!
//! - [`Verdict::Scrubbed`] — the channel's dynamic residue measure is
//!   exactly zero (a binding claim),
//! - [`Verdict::DecayBounded`] — residue may persist but a lifecycle edge
//!   bounds what the attacker reads (no binding claim),
//! - [`Verdict::Leaks`] — the channel's dynamic residue measure is strictly
//!   positive (a binding claim),
//!
//! with per-channel provenance naming the lifecycle edge responsible.
//!
//! The binding claims are not taken on faith: the soundness harness in
//! `tests/soundness.rs` streams real campaigns (via `msa_core::campaign`)
//! over the shipped [`audit`] matrix and asserts every `Scrubbed` channel
//! measures exactly zero and every `Leaks` channel measures strictly
//! positive — zero false-safe verdicts, proven against the dynamic engine.
//!
//! # Example
//!
//! ```
//! use msa_analyzer::{analyze, Channel, ScenarioShape, Verdict};
//! use zynq_dram::SanitizePolicy;
//!
//! // Zero-on-free under swap pressure: the frames are clean, but the
//! // residue has simply moved substrate.
//! let shape = ScenarioShape::new(SanitizePolicy::ZeroOnFree).with_swap(100);
//! let analysis = analyze(&shape);
//! assert_eq!(analysis.channel(Channel::DramFrames).verdict, Verdict::Scrubbed);
//! assert_eq!(analysis.channel(Channel::SwapSlots).verdict, Verdict::Leaks);
//! assert_eq!(analysis.overall(), Verdict::Leaks);
//! ```

pub mod audit;
pub mod flow;
pub mod lattice;
pub mod model;

pub use audit::{audit_matrix, audited_policies, AuditReport, SCHEMA};
pub use flow::{analyze, Analysis, ChannelFlow};
pub use lattice::{Channel, Verdict};
pub use model::{LifecycleEvent, ScenarioShape};
