//! The verdict lattice and the residue channels it judges.
//!
//! Every channel of every analyzed scenario lands on one of three verdicts,
//! ordered `Scrubbed < DecayBounded < Leaks`.  The two extremes carry binding
//! claims that the soundness harness checks against the dynamic campaign
//! engine; the middle is the honest "residue may exist but its readable
//! extent is bounded by consumption or analog decay" verdict, which claims
//! nothing measurable:
//!
//! - [`Verdict::Scrubbed`]: the channel's measured residue quantity is
//!   **exactly zero** in every dynamic execution of the scenario.
//! - [`Verdict::DecayBounded`]: residue may survive, but a lifecycle edge
//!   (successor consumption, tenant churn, analog remanence decay) bounds
//!   what the attacker can still read — no exact claim either way.
//! - [`Verdict::Leaks`]: the channel's measured residue quantity is
//!   **strictly positive** in every dynamic execution of the scenario.

use std::fmt;

/// A residue channel: one substrate through which a terminated victim's data
/// can outlive it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Freed DRAM frames still holding the victim's heap image
    /// (measured as residue frames neither CoW-retained nor lost before the
    /// scrape).
    DramFrames,
    /// Compressed swap slots holding swapped-out victim heap pages
    /// (measured as `swap_resident_bytes`).
    SwapSlots,
    /// Victim frames kept allocated past termination by copy-on-write
    /// children (measured as `cow_inherited_frames`).
    CowFrames,
    /// Residue a revived successor process inherits when it re-allocates the
    /// victim's frames — and, in the worst case, its pid (measured as
    /// `revival_inherited_frames`).
    PidReuse,
}

impl Channel {
    /// Every channel, in the fixed report order.
    pub const ALL: [Channel; 4] = [
        Channel::DramFrames,
        Channel::SwapSlots,
        Channel::CowFrames,
        Channel::PidReuse,
    ];

    /// Stable kebab-case name (report keys, table headers).
    pub fn name(self) -> &'static str {
        match self {
            Channel::DramFrames => "dram-frames",
            Channel::SwapSlots => "swap-slots",
            Channel::CowFrames => "cow-frames",
            Channel::PidReuse => "pid-reuse",
        }
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The three-point verdict lattice (derives `Ord` in lattice order, so
/// [`Verdict::join`] is just `max`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Verdict {
    /// No residue reaches the attacker through this channel: the dynamic
    /// measure is exactly zero.
    #[default]
    Scrubbed,
    /// Residue may survive, but a lifecycle edge bounds what is readable;
    /// no binding claim.
    DecayBounded,
    /// Raw residue persists: the dynamic measure is strictly positive.
    Leaks,
}

impl Verdict {
    /// Least upper bound: the worse of the two verdicts.
    #[must_use]
    pub fn join(self, other: Verdict) -> Verdict {
        self.max(other)
    }

    /// Stable kebab-case name (report values).
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Scrubbed => "scrubbed",
            Verdict::DecayBounded => "decay-bounded",
            Verdict::Leaks => "leaks",
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_the_lattice_maximum() {
        use Verdict::{DecayBounded, Leaks, Scrubbed};
        assert_eq!(Scrubbed.join(Scrubbed), Scrubbed);
        assert_eq!(Scrubbed.join(DecayBounded), DecayBounded);
        assert_eq!(DecayBounded.join(Scrubbed), DecayBounded);
        assert_eq!(DecayBounded.join(Leaks), Leaks);
        assert_eq!(Leaks.join(Scrubbed), Leaks);
    }

    #[test]
    fn join_is_commutative_associative_and_idempotent() {
        use Verdict::{DecayBounded, Leaks, Scrubbed};
        let all = [Scrubbed, DecayBounded, Leaks];
        for a in all {
            assert_eq!(a.join(a), a);
            for b in all {
                assert_eq!(a.join(b), b.join(a));
                for c in all {
                    assert_eq!(a.join(b).join(c), a.join(b.join(c)));
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Verdict::Scrubbed.to_string(), "scrubbed");
        assert_eq!(Verdict::DecayBounded.to_string(), "decay-bounded");
        assert_eq!(Verdict::Leaks.to_string(), "leaks");
        let names: Vec<&str> = Channel::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            ["dram-frames", "swap-slots", "cow-frames", "pid-reuse"]
        );
    }
}
