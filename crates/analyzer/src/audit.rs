//! The shipped audit matrix: the axis product the analyzer ships verdicts
//! for, the `ANALYSIS.json` report (schema `msa-analyzer-v1`) and its
//! human-readable table.
//!
//! The matrix mirrors the repository's dynamic sweeps so every static
//! verdict has a dynamic counterpart to be checked against:
//!
//! - **Block A** (64 cells): the single-victim product — every audited
//!   sanitize policy × swap pressure {0, 100} × remanence
//!   {perfect, exponential(hl=1)} × scrape {contiguous, bank-striped(4)} —
//!   covering the swap and remanence sweeps.
//! - **Block B** (8 cells): pid-reuse revival (1 successor) per policy —
//!   the Resurrection-style sweep.
//! - **Block C** (8 cells): fork-heavy victim (2 CoW children) per policy —
//!   the CoW-retention sweep.
//!
//! The soundness harness (`tests/soundness.rs`) streams real campaigns over
//! this exact product and proves the binding verdicts; the golden test pins
//! the JSON byte-for-byte.

use msa_core::report::{json_array, JsonObject, TextTable};
use msa_core::{ScrapeMode, VictimSchedule};
use zynq_dram::{RemanenceModel, SanitizePolicy};

use crate::flow::{analyze, Analysis};
use crate::lattice::Verdict;
use crate::model::ScenarioShape;

/// Report schema identifier, bumped on any breaking shape change.
pub const SCHEMA: &str = "msa-analyzer-v1";

/// The worker fan-out of the audited bank-striped scrape (matches the
/// `--banks` experiment).
pub const STRIPED_WORKERS: usize = 4;

/// The swap pressure of the audited under-pressure cells (matches the
/// `--swap` experiment).
pub const SWAP_PRESSURE: u8 = 100;

/// CoW children of the audited fork-heavy cells (matches `--swap`).
pub const COW_CHILDREN: usize = 2;

/// Every sanitize policy the audit covers: the five basic policies plus the
/// long-delay background scrubber and both swap-aware policies — the same
/// eight the dynamic swap sweep runs.
pub fn audited_policies() -> Vec<SanitizePolicy> {
    let mut policies: Vec<SanitizePolicy> = SanitizePolicy::all_basic().to_vec();
    policies.push(SanitizePolicy::Background { delay_ticks: 1000 });
    policies.push(SanitizePolicy::SwapScrub);
    policies.push(SanitizePolicy::ZeroOnFreeSwap);
    policies
}

/// The shipped audit matrix, in report order (80 shapes).
pub fn audit_matrix() -> Vec<ScenarioShape> {
    let mut shapes = Vec::new();
    // Block A: the single-victim product.
    for swap in [0u8, SWAP_PRESSURE] {
        for remanence in [
            RemanenceModel::Perfect,
            RemanenceModel::Exponential { half_life_ticks: 1 },
        ] {
            for scrape in [
                ScrapeMode::ContiguousRange,
                ScrapeMode::BankStriped {
                    workers: STRIPED_WORKERS,
                },
            ] {
                for policy in audited_policies() {
                    shapes.push(
                        ScenarioShape::new(policy)
                            .with_swap(swap)
                            .with_remanence(remanence)
                            .with_scrape(scrape),
                    );
                }
            }
        }
    }
    // Block B: pid-reuse revival per policy.
    for policy in audited_policies() {
        shapes.push(
            ScenarioShape::new(policy).with_schedule(VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            }),
        );
    }
    // Block C: fork-heavy victim per policy.
    for policy in audited_policies() {
        shapes.push(
            ScenarioShape::new(policy).with_schedule(VictimSchedule::ForkHeavy {
                children: COW_CHILDREN,
            }),
        );
    }
    shapes
}

/// The analyzed audit matrix: one [`Analysis`] per shipped shape.
#[derive(Debug, Clone)]
pub struct AuditReport {
    cells: Vec<Analysis>,
}

impl Default for AuditReport {
    fn default() -> Self {
        AuditReport::generate()
    }
}

impl AuditReport {
    /// Analyzes the full shipped matrix.
    pub fn generate() -> Self {
        AuditReport {
            cells: audit_matrix().iter().map(analyze).collect(),
        }
    }

    /// The analyzed cells, in report order.
    pub fn cells(&self) -> &[Analysis] {
        &self.cells
    }

    /// Counts of cells per overall verdict `(scrubbed, decay_bounded,
    /// leaks)`.
    pub fn verdict_counts(&self) -> (usize, usize, usize) {
        let count = |v: Verdict| self.cells.iter().filter(|a| a.overall() == v).count();
        (
            count(Verdict::Scrubbed),
            count(Verdict::DecayBounded),
            count(Verdict::Leaks),
        )
    }

    /// Serializes the report as the `msa-analyzer-v1` JSON document — one
    /// cell per line so golden diffs read cell-by-cell.  Deterministic:
    /// equal reports serialize to equal bytes.
    pub fn to_json(&self) -> String {
        let cell_lines: Vec<String> = self
            .cells
            .iter()
            .enumerate()
            .map(|(id, analysis)| cell_json(id, analysis))
            .collect();
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"cells\":[\n{}\n]}}\n",
            cell_lines.join(",\n")
        )
    }

    /// Renders the verdict matrix as a text table (the `msa-analyze` /
    /// `experiments --audit` stdout artifact).
    pub fn render_table(&self) -> String {
        let mut table = TextTable::new(vec![
            "policy",
            "schedule",
            "swap",
            "remanence",
            "scrape mode",
            "dram-frames",
            "swap-slots",
            "cow-frames",
            "pid-reuse",
            "overall",
        ]);
        for analysis in &self.cells {
            let shape = &analysis.shape;
            let mut row = vec![
                shape.policy.to_string(),
                shape.schedule.to_string(),
                format!("{}%", shape.swap_pressure),
                shape.remanence.to_string(),
                shape.scrape.to_string(),
            ];
            row.extend(
                analysis
                    .channels()
                    .map(|(_, flow)| flow.verdict.to_string()),
            );
            row.push(analysis.overall().to_string());
            table.add_row(row);
        }
        table.to_string()
    }
}

/// Serializes one analyzed cell as a single JSON line.
fn cell_json(id: usize, analysis: &Analysis) -> String {
    let shape = &analysis.shape;
    let mut channels = JsonObject::new();
    for (channel, flow) in analysis.channels() {
        let provenance: Vec<String> = flow.provenance.iter().map(|line| quote(line)).collect();
        let flow_json = JsonObject::new()
            .str("verdict", flow.verdict.name())
            .raw("provenance", &json_array(&provenance))
            .finish();
        channels = channels.raw(channel.name(), &flow_json);
    }
    JsonObject::new()
        .u64("id", id as u64)
        .str("policy", &shape.policy.to_string())
        .str("schedule", &shape.schedule.to_string())
        .u64("swap_pressure", u64::from(shape.swap_pressure))
        .str("remanence", &shape.remanence.to_string())
        .str("scrape_mode", &shape.scrape.to_string())
        .str("overall", analysis.overall().name())
        .bool("fully_scrubbed", analysis.fully_scrubbed())
        .raw("channels", &channels.finish())
        .finish()
}

/// Quotes a provenance line as a JSON string (the lines are plain ASCII by
/// construction; escaping is belt-and-braces).
fn quote(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for ch in value.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Channel;

    #[test]
    fn matrix_has_the_shipped_shape() {
        let matrix = audit_matrix();
        assert_eq!(matrix.len(), 80);
        assert_eq!(audited_policies().len(), 8);
        // 64 single-victim cells, 8 revival, 8 fork-heavy.
        let singles = matrix
            .iter()
            .filter(|s| s.schedule == VictimSchedule::Single)
            .count();
        assert_eq!(singles, 64);
    }

    #[test]
    fn report_is_deterministic_and_internally_consistent() {
        let a = AuditReport::generate();
        let b = AuditReport::generate();
        assert_eq!(a.to_json(), b.to_json());
        let (scrubbed, bounded, leaks) = a.verdict_counts();
        assert_eq!(scrubbed + bounded + leaks, a.cells().len());
        // The matrix is not degenerate: all three verdicts occur.
        assert!(scrubbed > 0 && bounded > 0 && leaks > 0);
    }

    #[test]
    fn json_declares_the_schema_and_every_cell() {
        let report = AuditReport::generate();
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"msa-analyzer-v1\",\"cells\":["));
        assert_eq!(json.matches("\"id\":").count(), report.cells().len());
        assert_eq!(
            json.matches("\"dram-frames\":").count(),
            report.cells().len()
        );
    }

    #[test]
    fn table_renders_one_row_per_cell() {
        let report = AuditReport::generate();
        let table = report.render_table();
        // Header line + separator line + one line per cell.
        assert_eq!(table.lines().count(), report.cells().len() + 2);
    }

    #[test]
    fn swap_aware_policy_is_fully_scrubbed_under_pressure() {
        let report = AuditReport::generate();
        let cell = report
            .cells()
            .iter()
            .find(|a| {
                a.shape.policy == SanitizePolicy::ZeroOnFreeSwap
                    && a.shape.swap_pressure == SWAP_PRESSURE
                    && a.shape.remanence == RemanenceModel::Perfect
            })
            .expect("audited cell");
        assert!(cell.fully_scrubbed());
        assert_eq!(cell.channel(Channel::SwapSlots).verdict, Verdict::Scrubbed);
    }
}
