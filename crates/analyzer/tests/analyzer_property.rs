//! Agreement between the static analyzer and the defense-evaluation sweeps,
//! plus sampled totality properties over arbitrary scenario shapes.
//!
//! The exhaustive tests run each shipped `msa_core::defense` sweep once
//! (cached — the sweeps are real campaigns) and check every row against the
//! verdict the analyzer issues for the same shape: a channel judged
//! `Scrubbed` must measure zero in the row, `Leaks` must measure positive,
//! and — because the sweeps run under perfect remanence, where no
//! `DecayBounded` verdict can arise on the checked channels — the
//! implications are biconditional.
//!
//! The proptest block then hammers `analyze` with arbitrary shapes (any
//! policy × any schedule × any swap pressure × decaying remanence) to prove
//! totality and the lattice invariants the report relies on.

use std::sync::OnceLock;

use msa_analyzer::{analyze, audited_policies, Channel, ScenarioShape, Verdict};
use msa_core::defense::{self, CowRow, RevivalRow, SwapRow};
use msa_core::{ScrapeMode, VictimSchedule};
use petalinux_sim::BoardConfig;
use proptest::prelude::*;
use vitis_ai_sim::ModelKind;
use zynq_dram::RemanenceModel;

const SWAP_PRESSURE: u8 = msa_analyzer::audit::SWAP_PRESSURE;
const COW_CHILDREN: usize = msa_analyzer::audit::COW_CHILDREN;

fn board() -> BoardConfig {
    BoardConfig::tiny_for_tests()
}

fn swap_rows() -> &'static [SwapRow] {
    static ROWS: OnceLock<Vec<SwapRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        defense::evaluate_swap(board(), ModelKind::SqueezeNet, SWAP_PRESSURE)
            .expect("swap sweep runs on the permissive tiny board")
    })
}

fn cow_rows() -> &'static [CowRow] {
    static ROWS: OnceLock<Vec<CowRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        defense::evaluate_cow_retention(board(), ModelKind::SqueezeNet, COW_CHILDREN)
            .expect("cow sweep runs on the permissive tiny board")
    })
}

fn revival_rows() -> &'static [RevivalRow] {
    static ROWS: OnceLock<Vec<RevivalRow>> = OnceLock::new();
    ROWS.get_or_init(|| {
        defense::evaluate_revival(board(), ModelKind::SqueezeNet)
            .expect("revival sweep runs on the permissive tiny board")
    })
}

#[test]
fn verdicts_agree_with_the_swap_sweep_on_every_row() {
    let rows = swap_rows();
    assert_eq!(rows.len(), audited_policies().len());
    for row in rows {
        let analysis = analyze(&ScenarioShape::new(row.policy).with_swap(SWAP_PRESSURE));
        // Perfect remanence + single victim: the swap and frame verdicts
        // are binary, so agreement is an iff on both channels.
        let swap = analysis.channel(Channel::SwapSlots).verdict;
        assert_eq!(
            swap == Verdict::Scrubbed,
            row.swap_resident_bytes == 0,
            "{}: swap verdict {swap} vs {} resident bytes",
            row.policy,
            row.swap_resident_bytes
        );
        assert_ne!(
            swap,
            Verdict::DecayBounded,
            "{}: swap never decays",
            row.policy
        );
        let dram = analysis.channel(Channel::DramFrames).verdict;
        assert_eq!(
            dram == Verdict::Scrubbed,
            row.residue_frames == 0,
            "{}: dram verdict {dram} vs {} residue frames",
            row.policy,
            row.residue_frames
        );
        // The analyzer's scrubs-swap knowledge matches the policy's.
        assert_eq!(row.scrubs_swap, swap == Verdict::Scrubbed);
    }
}

#[test]
fn verdicts_agree_with_the_cow_sweep_on_every_row() {
    let rows = cow_rows();
    assert!(!rows.is_empty());
    for row in rows {
        let analysis = analyze(&ScenarioShape::new(row.policy).with_schedule(
            VictimSchedule::ForkHeavy {
                children: COW_CHILDREN,
            },
        ));
        let cow = analysis.channel(Channel::CowFrames).verdict;
        assert_eq!(
            cow == Verdict::Leaks,
            row.cow_inherited_frames > 0,
            "{}: cow verdict {cow} vs {} inherited frames",
            row.policy,
            row.cow_inherited_frames
        );
        // CoW pinning bypasses every frame-oriented scrubber: the sweep
        // must agree that the channel leaks under all audited policies.
        assert_eq!(cow, Verdict::Leaks, "{}: cow retention leaks", row.policy);
        let dram = analysis.channel(Channel::DramFrames).verdict;
        assert_eq!(
            dram == Verdict::Scrubbed,
            row.victim_frames == row.cow_inherited_frames,
            "{}: dram verdict {dram} vs {} of {} frames pinned",
            row.policy,
            row.cow_inherited_frames,
            row.victim_frames
        );
    }
}

#[test]
fn verdicts_agree_with_the_revival_sweep_on_every_row() {
    let rows = revival_rows();
    assert!(!rows.is_empty());
    for row in rows {
        let analysis = analyze(&ScenarioShape::new(row.policy).with_schedule(
            VictimSchedule::Revival {
                successors: 1,
                reuse_pid: true,
            },
        ));
        let pid = analysis.channel(Channel::PidReuse).verdict;
        assert_eq!(
            pid == Verdict::Scrubbed,
            row.inherited_frames == 0,
            "{}: pid-reuse verdict {pid} vs {} inherited frames",
            row.policy,
            row.inherited_frames
        );
        assert_ne!(
            pid,
            Verdict::DecayBounded,
            "{}: inheritance is binary under perfect remanence",
            row.policy
        );
    }
}

/// Strategy index → one of the shipped schedules (plus the no-event ones,
/// which the analyzer must also handle totally).
fn schedule(index: u8, knob: usize) -> VictimSchedule {
    match index {
        0 => VictimSchedule::Single,
        1 => VictimSchedule::SequentialTraffic {
            predecessors: knob % 5,
        },
        2 => VictimSchedule::MultiTenant {
            active_model: ModelKind::SqueezeNet,
            warmup_pages: knob as u64,
        },
        3 => VictimSchedule::Revival {
            successors: 1 + knob % 3,
            reuse_pid: knob.is_multiple_of(2),
        },
        4 => VictimSchedule::LiveTraffic {
            tenants: 1 + knob % 3,
            churn_rate: knob % 4,
        },
        _ => VictimSchedule::ForkHeavy {
            children: 1 + knob % 4,
        },
    }
}

fn arbitrary_shape(
    policy_index: usize,
    schedule_index: u8,
    knob: usize,
    swap: u8,
    decay: bool,
) -> ScenarioShape {
    let policies = audited_policies();
    let remanence = if decay {
        RemanenceModel::Exponential { half_life_ticks: 1 }
    } else {
        RemanenceModel::Perfect
    };
    let scrape = if knob.is_multiple_of(2) {
        ScrapeMode::ContiguousRange
    } else {
        ScrapeMode::BankStriped {
            workers: 1 + knob % 7,
        }
    };
    let policy = policies
        .get(policy_index % policies.len())
        .copied()
        .expect("index reduced modulo len");
    ScenarioShape::new(policy)
        .with_schedule(schedule(schedule_index, knob))
        .with_swap(swap)
        .with_remanence(remanence)
        .with_scrape(scrape)
}

proptest! {
    #[test]
    fn analyze_is_total_and_deterministic(
        policy_index in 0usize..8,
        schedule_index in 0u8..6,
        knob in 0usize..64,
        swap in 0u8..120,
        decay_bit in 0u8..2,
    ) {
        let shape = arbitrary_shape(policy_index, schedule_index, knob, swap, decay_bit == 1);
        let a = analyze(&shape);
        let b = analyze(&shape);
        for (channel, flow) in a.channels() {
            // Deterministic, fully populated, and explained.
            prop_assert_eq!(flow.verdict, b.channel(channel).verdict);
            prop_assert!(!flow.provenance.is_empty());
        }
        // The overall verdict is the lattice join of the channels.
        let join = a
            .channels()
            .map(|(_, flow)| flow.verdict)
            .fold(Verdict::Scrubbed, Verdict::join);
        prop_assert_eq!(a.overall(), join);
        prop_assert_eq!(a.fully_scrubbed(), join == Verdict::Scrubbed);
    }

    #[test]
    fn unexercised_channels_never_accuse(
        policy_index in 0usize..8,
        knob in 0usize..64,
        decay_bit in 0u8..2,
    ) {
        // With no swap, no fork and no revival, only the frame channel can
        // carry residue: the structural channels must be scrubbed.
        let shape = arbitrary_shape(policy_index, 0, knob, 0, decay_bit == 1);
        let analysis = analyze(&shape);
        prop_assert_eq!(analysis.channel(Channel::SwapSlots).verdict, Verdict::Scrubbed);
        prop_assert_eq!(analysis.channel(Channel::CowFrames).verdict, Verdict::Scrubbed);
        prop_assert_eq!(analysis.channel(Channel::PidReuse).verdict, Verdict::Scrubbed);
    }

    #[test]
    fn decay_only_ever_weakens_leaks(
        policy_index in 0usize..8,
        schedule_index in 0u8..6,
        knob in 0usize..64,
        swap in 0u8..120,
    ) {
        // Moving from perfect remanence to a decaying cell can turn a Leaks
        // verdict into DecayBounded, never into Scrubbed, and can never
        // *create* a leak: decay destroys residue, it does not mint it.
        let perfect = analyze(&arbitrary_shape(policy_index, schedule_index, knob, swap, false));
        let decayed = analyze(&arbitrary_shape(policy_index, schedule_index, knob, swap, true));
        for (channel, flow) in perfect.channels() {
            let weakened = decayed.channel(channel).verdict;
            match flow.verdict {
                Verdict::Scrubbed => prop_assert_eq!(weakened, Verdict::Scrubbed),
                _ => prop_assert!(weakened != Verdict::Scrubbed || flow.verdict == Verdict::Scrubbed),
            }
        }
    }
}
