//! The soundness harness: static verdicts vs. the dynamic campaign engine.
//!
//! Streams real campaigns (tiny board, squeezenet victim) over the exact
//! axis product of the shipped audit matrix and checks every binding verdict
//! against the measured residue:
//!
//! - a channel judged `Scrubbed` must measure **exactly zero** in the
//!   dynamic run (no false-safe verdicts — the property the analyzer exists
//!   for),
//! - a channel judged `Leaks` must measure **strictly positive**,
//! - a fully scrubbed cell must additionally recover nothing at all: zero
//!   pixel recovery, no identification, zero raw residue bytes.
//!
//! `DecayBounded` channels are deliberately unchecked — that verdict claims
//! nothing measurable.
//!
//! The per-channel dynamic measures:
//!
//! | channel       | measure                                                |
//! |---------------|--------------------------------------------------------|
//! | `dram-frames` | `victim_frames - cow_inherited_frames - frames_lost_before_scrape` |
//! | `swap-slots`  | `swap_resident_bytes`                                  |
//! | `cow-frames`  | `cow_inherited_frames`                                 |
//! | `pid-reuse`   | `revival_inherited_frames`                             |
//!
//! The scrape-mode axis runs as two same-shape specs (identical cell
//! indexes, therefore identical per-cell seeds), which also yields the
//! paired cross-check: bank-striping the scrape must not change a single
//! metric.

use msa_analyzer::{analyze, Channel, ScenarioShape, Verdict};
use msa_core::campaign::{CampaignSpec, CellRecord, InputKind, StreamConfig};
use msa_core::{ScrapeMode, VictimSchedule};
use petalinux_sim::BoardConfig;
use vitis_ai_sim::ModelKind;
use zynq_dram::{RemanenceModel, SanitizePolicy};

/// The audited sanitize policies (the swap sweep's eight).
fn policies() -> Vec<SanitizePolicy> {
    msa_analyzer::audited_policies()
}

/// A single-victim spec over the audited policy × remanence product at one
/// swap pressure and one scrape mode.  All four Block-A specs share this
/// shape, so cell indexes — and with them per-cell seeds — line up pairwise.
fn block_a_spec(swap: u8, scrape: ScrapeMode) -> CampaignSpec {
    CampaignSpec::new("soundness", BoardConfig::tiny_for_tests().with_swap(swap))
        .with_models(vec![ModelKind::SqueezeNet])
        .with_inputs(vec![InputKind::SamplePhoto])
        .with_sanitize_policies(policies())
        .with_remanence_models(vec![
            RemanenceModel::Perfect,
            RemanenceModel::Exponential { half_life_ticks: 1 },
        ])
        .with_scrape_modes(vec![scrape])
        .with_seed(0x50F7)
}

/// A one-schedule spec over the audited policies (Blocks B and C).
fn schedule_spec(schedule: VictimSchedule) -> CampaignSpec {
    CampaignSpec::new("soundness", BoardConfig::tiny_for_tests())
        .with_models(vec![ModelKind::SqueezeNet])
        .with_inputs(vec![InputKind::SamplePhoto])
        .with_sanitize_policies(policies())
        .with_schedules(vec![schedule])
        .with_seed(0x50F7)
}

/// Streams `spec` and returns every record (strict cell-index order).
fn stream(spec: &CampaignSpec) -> Vec<CellRecord> {
    let mut records = Vec::new();
    spec.stream_cells(StreamConfig::default(), |record| {
        records.push(record);
        Ok(())
    })
    .expect("soundness campaign streams");
    records
}

/// The dynamic measure of one channel in one completed cell.
fn measure(record: &CellRecord, channel: Channel) -> u64 {
    let metrics = record
        .metrics
        .as_ref()
        .expect("permissive soundness cells complete");
    let lifetime = metrics.residue_lifetime;
    match channel {
        Channel::DramFrames => lifetime
            .victim_frames
            .saturating_sub(lifetime.cow_inherited_frames)
            .saturating_sub(lifetime.frames_lost_before_scrape)
            as u64,
        Channel::SwapSlots => lifetime.swap_resident_bytes,
        Channel::CowFrames => lifetime.cow_inherited_frames as u64,
        Channel::PidReuse => lifetime.revival_inherited_frames as u64,
    }
}

/// Checks every binding verdict of `record`'s cell against its measured
/// residue; returns the verdict classes seen (for the non-degeneracy tally).
fn check_record(record: &CellRecord) -> Vec<(Channel, Verdict)> {
    let shape = ScenarioShape::of_cell(&record.cell);
    let analysis = analyze(&shape);
    let ctx = format!(
        "cell {} ({}, {}, swap {}%, {}, {})",
        record.cell.index,
        shape.policy,
        shape.schedule,
        shape.swap_pressure,
        shape.remanence,
        shape.scrape
    );

    let mut seen = Vec::new();
    for (channel, flow) in analysis.channels() {
        let measured = measure(record, channel);
        match flow.verdict {
            Verdict::Scrubbed => assert_eq!(
                measured, 0,
                "{ctx}: {channel} judged scrubbed but measures {measured} \
                 (provenance: {:?})",
                flow.provenance
            ),
            Verdict::Leaks => assert!(
                measured > 0,
                "{ctx}: {channel} judged leaking but measures zero \
                 (provenance: {:?})",
                flow.provenance
            ),
            Verdict::DecayBounded => {}
        }
        seen.push((channel, flow.verdict));
    }

    if analysis.fully_scrubbed() {
        let metrics = record.metrics.as_ref().expect("completed");
        assert_eq!(
            metrics.pixel_recovery, 0.0,
            "{ctx}: fully scrubbed but pixels recovered"
        );
        assert!(
            !metrics.model_identified,
            "{ctx}: fully scrubbed but the model was identified"
        );
        assert_eq!(
            metrics.residue_lifetime.residue_bytes_raw, 0,
            "{ctx}: fully scrubbed but raw residue bytes remain"
        );
    }
    seen
}

#[test]
fn static_verdicts_are_sound_over_the_audited_single_victim_product() {
    let mut tally: Vec<(Channel, Verdict)> = Vec::new();
    for swap in [0u8, msa_analyzer::audit::SWAP_PRESSURE] {
        let contiguous = stream(&block_a_spec(swap, ScrapeMode::ContiguousRange));
        let striped = stream(&block_a_spec(
            swap,
            ScrapeMode::BankStriped {
                workers: msa_analyzer::audit::STRIPED_WORKERS,
            },
        ));
        assert_eq!(contiguous.len(), 16);
        assert_eq!(striped.len(), 16);
        for record in contiguous.iter().chain(&striped) {
            tally.extend(check_record(record));
        }
        // Paired cross-check: same cell index ⇒ same seed, and striping the
        // scrape is a wall-clock knob — every science field must agree.
        for (a, b) in contiguous.iter().zip(&striped) {
            assert_eq!(a.cell.index, b.cell.index);
            assert_eq!(
                a.result, b.result,
                "cell {}: scrape striping changed the result",
                a.cell.index
            );
            assert_eq!(
                a.metrics, b.metrics,
                "cell {}: scrape striping changed the metrics",
                a.cell.index
            );
        }
    }
    // Non-degeneracy: the product exercises binding verdicts on both sides
    // for the frame and swap channels — the soundness claims above were
    // tested against real zeros *and* real positives.
    for channel in [Channel::DramFrames, Channel::SwapSlots] {
        for verdict in [Verdict::Scrubbed, Verdict::Leaks] {
            assert!(
                tally.iter().any(|&(c, v)| c == channel && v == verdict),
                "audit product never produced {verdict} on {channel}"
            );
        }
    }
    assert!(tally
        .iter()
        .any(|&(c, v)| c == Channel::DramFrames && v == Verdict::DecayBounded));
}

#[test]
fn static_verdicts_are_sound_over_the_revival_block() {
    let records = stream(&schedule_spec(VictimSchedule::Revival {
        successors: 1,
        reuse_pid: true,
    }));
    assert_eq!(records.len(), 8);
    let mut tally = Vec::new();
    for record in &records {
        tally.extend(check_record(record));
    }
    // Both binding verdicts occur on the inheritance channel: unsanitized
    // frames are inherited raw, fully scrubbed frames inherit nothing.
    for verdict in [Verdict::Scrubbed, Verdict::Leaks] {
        assert!(
            tally
                .iter()
                .any(|&(c, v)| c == Channel::PidReuse && v == verdict),
            "revival block never produced {verdict} on pid-reuse"
        );
    }
}

#[test]
fn static_verdicts_are_sound_over_the_fork_heavy_block() {
    let records = stream(&schedule_spec(VictimSchedule::ForkHeavy {
        children: msa_analyzer::audit::COW_CHILDREN,
    }));
    assert_eq!(records.len(), 8);
    let mut tally = Vec::new();
    for record in &records {
        tally.extend(check_record(record));
    }
    // CoW retention leaks under every audited policy — including the ones
    // that fully scrub freed frames — and the DRAM channel is clean because
    // nothing was freed.
    assert!(tally
        .iter()
        .filter(|&&(c, _)| c == Channel::CowFrames)
        .all(|&(_, v)| v == Verdict::Leaks));
    assert!(tally
        .iter()
        .filter(|&&(c, _)| c == Channel::DramFrames)
        .all(|&(_, v)| v == Verdict::Scrubbed));
}
