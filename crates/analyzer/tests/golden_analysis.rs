//! Golden pin of the `msa-analyzer-v1` report.
//!
//! `ANALYSIS.json` is a shipped artifact: CI regenerates it with
//! `msa-analyze` and diffs it byte-for-byte against the copy pinned here, so
//! any change to the audit matrix, the transfer rules or the serialization
//! shows up as a reviewable diff.  The report is fully deterministic — no
//! normalization is applied.
//!
//! To regenerate after an intentional verdict or format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p msa-analyzer --test golden_analysis
//! ```

use std::path::Path;

use msa_analyzer::AuditReport;

fn golden_path() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/analysis.json")
}

#[test]
fn analysis_json_is_pinned() {
    let json = AuditReport::generate().to_json();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &json).expect("golden file written");
        return;
    }
    let golden = std::fs::read_to_string(&path).expect(
        "golden file exists — regenerate with UPDATE_GOLDEN=1 cargo test -p msa-analyzer \
         --test golden_analysis",
    );
    assert_eq!(
        json, golden,
        "ANALYSIS.json drifted from the golden file; if the verdict change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn msa_analyze_binary_emits_the_pinned_report() {
    // The binary writes the same bytes the library serializes: run it into a
    // temp path and compare against the golden (skipping under
    // UPDATE_GOLDEN, when the golden is being rewritten by the test above).
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        return;
    }
    let out = std::env::temp_dir().join("msa-analyze-golden-check.json");
    let out_arg = format!("--out={}", out.display());
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_msa-analyze"))
        .arg(&out_arg)
        .output()
        .expect("msa-analyze runs");
    assert!(
        output.status.success(),
        "msa-analyze exited with {:?}: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let written = std::fs::read_to_string(&out).expect("report written");
    let golden = std::fs::read_to_string(golden_path()).expect("golden file exists");
    assert_eq!(written, golden, "binary output drifted from the golden");
    let stdout = String::from_utf8(output.stdout).expect("stdout is UTF-8");
    assert!(stdout.contains("=== ANALYZE:"));
    assert!(stdout.contains("80 cells:"));
    let _ = std::fs::remove_file(&out);
}
