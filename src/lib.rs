//! # fpga-msa — Memory Scraping Attack on Xilinx FPGAs (reproduction)
//!
//! This meta-crate re-exports every crate in the reproduction workspace so
//! that examples and downstream users can depend on a single package:
//!
//! - [`dram`] — physical DRAM model of the ZCU104's local memory
//!   (residue retention, DDR address mapping, sanitization policies).
//! - [`mmu`] — virtual memory: page tables, frame allocation, Linux-format
//!   `pagemap` encoding, address-space layout policies.
//! - [`petalinux`] — an embedded-OS simulator standing in for PetaLinux:
//!   processes, users, per-process heaps, `/proc` emulation and shell
//!   commands (`ps -ef`, `devmem`, `hexdump`).
//! - [`vitis`] — a Vitis-AI-like model runtime: model zoo, `.xmodel`
//!   container, images and a DPU runner that plays the victim workload.
//! - [`debugger`] — the Xilinx System Debugger analogue used as the attack
//!   channel.
//! - [`msa`] — the paper's contribution: the memory scraping attack
//!   pipeline, offline profiler, dump analysis and defense evaluation.
//!
//! # Quickstart
//!
//! ```
//! use fpga_msa::msa::scenario::AttackScenario;
//! use fpga_msa::petalinux::BoardConfig;
//! use fpga_msa::vitis::ModelKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A victim runs resnet50_pt on a stock (vulnerable) board; a second user
//! // observes it with the debugger, waits for termination, scrapes DRAM and
//! // analyses the residue.
//! let outcome = AttackScenario::new(BoardConfig::tiny_for_tests(), ModelKind::Resnet50Pt)
//!     .with_corrupted_input()
//!     .execute()?;
//! assert_eq!(outcome.identified_model(), Some(ModelKind::Resnet50Pt));
//! assert!(outcome.pixel_recovery_rate() > 0.95);
//! # Ok(())
//! # }
//! ```

pub use msa_core as msa;
pub use petalinux_sim as petalinux;
pub use vitis_ai_sim as vitis;
pub use xsdb as debugger;
pub use zynq_dram as dram;
pub use zynq_mmu as mmu;
