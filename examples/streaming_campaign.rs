//! Streaming campaign: fold a scenario matrix without materializing it.
//!
//! A `CampaignSpec` is a lazy cross-product — `cells()` walks it without
//! allocating the matrix, and the streaming engine executes cells on a
//! worker pool while folding their metrics into per-axis aggregates as
//! they complete.  Memory stays bounded by the pool (a few claim blocks),
//! never by the matrix, which is what lets the same engine run
//! million-cell fleets (`experiments --campaign --stress`).
//!
//! Run with: `cargo run --example streaming_campaign`

use fpga_msa::dram::SanitizePolicy;
use fpga_msa::msa::campaign::{CampaignSpec, InputKind, StreamConfig};
use fpga_msa::msa::report::{percent, TextTable};
use fpga_msa::msa::ScrapeMode;
use fpga_msa::petalinux::{BoardConfig, IsolationPolicy};
use fpga_msa::vitis::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 48 cells: 2 models × 2 inputs × 3 sanitize policies × 2 isolation
    // policies × 2 scrape modes, all on the tiny board.
    let spec = CampaignSpec::new("tiny", BoardConfig::tiny_for_tests())
        .with_models(vec![ModelKind::SqueezeNet, ModelKind::MobileNetV2])
        .with_inputs(vec![InputKind::SamplePhoto, InputKind::Corrupted])
        .with_sanitize_policies(vec![
            SanitizePolicy::None,
            SanitizePolicy::ZeroOnFree,
            SanitizePolicy::SelectiveScrub,
        ])
        .with_isolation_policies(vec![IsolationPolicy::Permissive, IsolationPolicy::Confined])
        .with_scrape_modes(vec![ScrapeMode::ContiguousRange, ScrapeMode::PerPage])
        .with_seed(2024);

    // The lazy walk: inspect the matrix without running (or storing) it.
    println!(
        "matrix: {} cells, first {}/{}, last {}/{}\n",
        spec.cell_count(),
        spec.cells().next().unwrap().model,
        spec.cells().next().unwrap().sanitize,
        spec.cells().next_back().unwrap().model,
        spec.cells().next_back().unwrap().sanitize,
    );

    // Stream it: NDJSON progress per folded cell group, aggregates at the
    // end.  `stream_cells` would additionally hand over every record (in
    // cell-index order) without retaining it.
    println!("progress (one NDJSON line per folded cell group):");
    let summary = spec.stream_with_progress(
        StreamConfig::default().with_workers(2).with_block_size(8),
        |progress| println!("{}", progress.to_ndjson()),
    )?;

    println!(
        "\n{} cells on {} workers: {} completed, {} blocked, {} identified",
        summary.cells_total,
        summary.workers,
        summary.totals.completed,
        summary.totals.blocked,
        summary.totals.identified,
    );
    println!(
        "peak resident cells: {} (bounded by the pool, not the matrix)\n",
        summary.peak_resident_cells
    );

    // Per-axis aggregates were folded incrementally — no per-cell records
    // were ever retained.
    let mut table = TextTable::new(vec![
        "sanitize policy",
        "cells",
        "completed",
        "identified",
        "mean pixel recovery",
    ]);
    for (policy, stats) in summary.axes.by_sanitize.iter() {
        table.add_row(vec![
            policy.clone(),
            stats.cells.to_string(),
            stats.completed.to_string(),
            stats.identified.to_string(),
            percent(stats.mean_pixel_recovery),
        ]);
    }
    println!("{table}");

    // The machine-readable artifact the experiments binary writes to
    // BENCH_campaign.json.
    println!("bench JSON:\n{}", summary.bench_json("example"));
    Ok(())
}
