//! Quickstart: one end-to-end memory scraping attack on a stock ZCU104.
//!
//! Run with: `cargo run --example quickstart`

use fpga_msa::msa::scenario::AttackScenario;
use fpga_msa::petalinux::BoardConfig;
use fpga_msa::vitis::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A victim tenant runs resnet50_pt (the paper's victim model) on the
    // Xilinx-style sample image; the board uses the vulnerable PetaLinux
    // defaults: no sanitization at process exit, permissive debugger access,
    // deterministic layout.
    let scenario = AttackScenario::new(BoardConfig::zcu104(), ModelKind::Resnet50Pt);
    let outcome = scenario.execute()?;

    println!("== memory scraping attack: quickstart ==");
    println!("victim pid            : {}", outcome.attack().victim_pid);
    println!(
        "model identified      : {}",
        outcome
            .identified_model()
            .map(|m| m.to_string())
            .unwrap_or_else(|| "<none>".to_string())
    );
    println!(
        "identification correct: {}",
        outcome.model_identification_correct()
    );
    println!(
        "identification conf.  : {:.0}%",
        outcome.attack().identification_confidence() * 100.0
    );
    println!(
        "input image recovered : {:.1}% of pixels",
        outcome.pixel_recovery_rate() * 100.0
    );
    println!("bytes scraped         : {}", outcome.bytes_scraped());
    println!("residue frames left   : {}", outcome.residue_frames_after());
    println!(
        "attack wall-clock     : {:?}",
        outcome.attack().timings.total()
    );
    Ok(())
}
