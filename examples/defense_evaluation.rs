//! Defense evaluation: sweep the sanitization policies, the debugger
//! isolation policy and layout randomization against the attack, and print
//! one table per sweep.
//!
//! Run with: `cargo run --example defense_evaluation`

use fpga_msa::msa::defense::{
    evaluate_isolation, evaluate_layout_randomization, evaluate_sanitize_policies,
};
use fpga_msa::msa::report::{bytes, percent, TextTable};
use fpga_msa::petalinux::BoardConfig;
use fpga_msa::vitis::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = BoardConfig::zcu104();
    let model = ModelKind::Resnet50Pt;

    println!("== sanitization policies vs the attack (victim: {model}) ==\n");
    let mut table = TextTable::new(vec![
        "policy",
        "model identified",
        "pixel recovery",
        "residue frames",
        "scrub cost (cycles)",
        "collateral",
    ]);
    for row in evaluate_sanitize_policies(board, model)? {
        table.add_row(vec![
            row.policy.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            row.residue_frames.to_string(),
            format!("{:.0}", row.scrub_cost_cycles),
            bytes(row.collateral_bytes),
        ]);
    }
    println!("{table}");

    println!("== debugger isolation policy vs the attack ==\n");
    let mut table = TextTable::new(vec![
        "isolation",
        "attack completed",
        "model identified",
        "pixel recovery",
        "blocked at",
    ]);
    for row in evaluate_isolation(board, model)? {
        table.add_row(vec![
            row.isolation.to_string(),
            row.attack_completed.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
            row.blocked_at.unwrap_or_else(|| "-".to_string()),
        ]);
    }
    println!("{table}");

    println!("== layout randomization vs the attack ==\n");
    let mut table = TextTable::new(vec![
        "allocation order",
        "aslr",
        "scrape mode",
        "model identified",
        "pixel recovery",
    ]);
    for row in evaluate_layout_randomization(board, model)? {
        table.add_row(vec![
            row.allocation_order.to_string(),
            row.aslr.to_string(),
            row.scrape_mode.to_string(),
            row.model_identified.to_string(),
            percent(row.pixel_recovery),
        ]);
    }
    println!("{table}");

    Ok(())
}
