//! The full attack, step by step, with terminal output mirroring the paper's
//! Figures 5–12: process listings, the heap line from `maps`, the translated
//! physical endpoints, `devmem` reads, the hexdump `grep` hit and the
//! corrupted-image marker rows.
//!
//! Run with: `cargo run --example full_attack`

// Lint audit: narrowing casts here operate on values already clamped
// to their target range by the surrounding arithmetic.
#![allow(clippy::cast_possible_truncation)]

use fpga_msa::debugger::DebugSession;
use fpga_msa::msa::attack::{AttackConfig, AttackPipeline};
use fpga_msa::msa::detect::{DetectorConfig, ScrapingDetector};
use fpga_msa::msa::profile::Profiler;
use fpga_msa::petalinux::{BoardConfig, Kernel, Shell, UserId};
use fpga_msa::vitis::{DpuRunner, Image, ModelKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = BoardConfig::zcu104();
    let victim_user = UserId::new(0);
    let attacker_user = UserId::new(1);

    // ---- Offline phase (paper §II adversary model): profile the public
    // model library on the attacker's own board.
    println!("== offline profiling (attacker's own board) ==");
    let profiles = Profiler::new(board).profile_all();
    for profile in profiles.iter() {
        println!(
            "  {:<18} image offset {:>8} bytes into heap, heap {} bytes",
            profile.model.to_string(),
            profile.image_offset,
            profile.heap_len
        );
    }

    let pipeline = AttackPipeline::new(AttackConfig::default()).with_profiles(profiles);

    // ---- Online phase: the victim board.
    let mut kernel = Kernel::boot(board);
    let attacker_shell = Shell::new(attacker_user);
    let mut debugger = DebugSession::connect(attacker_user);

    // Background processes so the listings have the paper's shape.
    kernel.spawn(victim_user, &["[kworker/3:0-events]"])?;
    kernel.spawn(attacker_user, &["-sh"])?;

    println!("\n== step 1: ps -ef before the victim runs (Figure 5) ==");
    print!("{}", attacker_shell.ps_ef(&kernel));

    // The victim runs resnet50_pt on the corrupted (0xFFFFFF) image, exactly
    // as in the paper's experiment.
    let victim = DpuRunner::new(ModelKind::Resnet50Pt)
        .with_input(Image::corrupted(224, 224))
        .launch(&mut kernel, victim_user)?;

    println!("\n== step 1: ps -ef with the victim running (Figure 6) ==");
    print!("{}", attacker_shell.ps_ef(&kernel));

    let pid = pipeline.poll_for_victim(&mut debugger, &kernel)?;
    println!("victim pid observed: {pid}");

    println!("\n== step 2: heap range from /proc/{pid}/maps (Figure 7) ==");
    let maps = debugger.read_maps(&kernel, pid)?;
    for line in maps.lines().filter(|l| l.contains("[heap]")) {
        println!("{line}");
    }

    let observation = pipeline.observe_victim(&mut debugger, &kernel, pid)?;
    let translation = observation.translation();
    println!("\n== step 2: virtual_to_physical conversion (Figure 8) ==");
    println!(
        "{} -> {}",
        translation.heap_start(),
        translation.phys_start().expect("heap start resident")
    );
    println!(
        "{} -> {}",
        translation.heap_end(),
        translation.phys_end().expect("heap end resident")
    );

    // The victim finishes and its pid disappears.
    victim.terminate(&mut kernel)?;
    println!("\n== step 3: ps -ef after termination (Figure 9) ==");
    print!("{}", attacker_shell.ps_ef(&kernel));

    println!("\n== step 3: devmem reads of the residual data (Figure 10) ==");
    let start = translation.phys_start().expect("heap start resident");
    for offset in [0u64, 0x730, 0x1000] {
        let addr = start + offset;
        let word = debugger.read_phys_u32(&kernel, addr)?;
        println!("devmem {addr} -> {word:#010x}");
    }

    let outcome = pipeline.execute(&mut debugger, &kernel, &observation)?;

    println!("\n== step 4.a: grep for the model name in the hexdump (Figure 11) ==");
    // Re-scrape just to render the evidence lines (the pipeline already did
    // the analysis internally).
    let dump = pipeline.scrape_after_termination(&mut debugger, &kernel, &observation)?;
    for line in dump.to_hexdump().grep("resnet50").into_iter().take(3) {
        println!("{line}");
    }

    println!("\n== step 4.b: corrupted-image marker rows (Figure 12) ==");
    if let Some(run) = outcome.marker_runs.first() {
        println!(
            "first FFFF FFFF run at heap offset {:#x}, {} bytes long",
            run.offset, run.len
        );
        let hexdump = dump.to_hexdump();
        for row in hexdump.rows().skip((run.offset as usize) / 16).take(3) {
            println!("{}", row.render());
        }
    }

    println!("\n== attack outcome ==");
    println!(
        "identified model : {}",
        outcome
            .identified_model()
            .map(|m| m.to_string())
            .unwrap_or_else(|| "<none>".to_string())
    );
    println!(
        "image recovered  : {:.1}% of pixels",
        outcome.image_recovery_rate(&Image::corrupted(224, 224)) * 100.0
    );
    println!(
        "step timings     : poll {:?}, translate {:?}, scrape {:?}, analyze {:?}",
        outcome.timings.poll,
        outcome.timings.translate,
        outcome.timings.scrape,
        outcome.timings.analyze
    );

    // ---- Defender's view: what a board-side monitor would have seen.
    println!("\n== defender view: debugger audit log ==");
    println!(
        "operations logged: {}, physical bytes read: {}",
        debugger.audit().len(),
        debugger.audit().physical_bytes_read()
    );
    let detector = ScrapingDetector::new(DetectorConfig::default());
    match detector.inspect(&kernel, debugger.user(), debugger.audit()) {
        Some(finding) => println!(
            "detection: {} (target pid {:?}) — {}",
            finding.severity, finding.target, finding.reason
        ),
        None => println!("detection: nothing flagged"),
    }
    Ok(())
}
