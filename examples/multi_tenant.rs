//! Multi-tenant scenario: one tenant's terminated process is scraped while a
//! second tenant keeps running, and the sanitization policies are compared on
//! both axes the paper cares about — does the attack still work, and does the
//! sanitizer destroy the *active* tenant's data?
//!
//! Run with: `cargo run --example multi_tenant`

use fpga_msa::msa::defense::evaluate_multi_tenant;
use fpga_msa::msa::report::{bytes, TextTable};
use fpga_msa::petalinux::BoardConfig;
use fpga_msa::vitis::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = BoardConfig::zcu104();
    println!(
        "== multi-tenant residue and collateral (victim: squeezenet, active: mobilenet_v2) ==\n"
    );

    let rows = evaluate_multi_tenant(board, ModelKind::SqueezeNet, ModelKind::MobileNetV2)?;

    let mut table = TextTable::new(vec![
        "sanitize policy",
        "victim model identified",
        "active tenant clobbered",
        "active tenant data intact",
    ]);
    for row in &rows {
        table.add_row(vec![
            row.policy.to_string(),
            row.victim_model_identified.to_string(),
            bytes(row.active_tenant_bytes_clobbered),
            row.active_tenant_data_intact.to_string(),
        ]);
    }
    println!("{table}");

    println!("Reading the table:");
    println!("- 'none' / 'background-scrub': the attack recovers the terminated tenant's model;");
    println!("  nothing protects the residue.");
    println!("- 'zero-on-free' / 'selective-scrub': the attack is defeated and the co-tenant is unharmed.");
    println!("- 'rowclone' / 'rowreset': the attack is defeated, but the contiguous/bank-granular");
    println!("  clearing also destroys the still-running tenant's data — the hazard the paper");
    println!("  highlights for multi-tenant FPGAs with non-contiguous allocations.");
    Ok(())
}
