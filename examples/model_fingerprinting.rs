//! Model fingerprinting across the zoo: run every Vitis-AI-style model as the
//! victim and check whether the attack identifies it (and only it) from the
//! scraped memory dump.
//!
//! Run with: `cargo run --example model_fingerprinting`

use fpga_msa::msa::profile::Profiler;
use fpga_msa::msa::report::{percent, TextTable};
use fpga_msa::msa::scenario::AttackScenario;
use fpga_msa::petalinux::BoardConfig;
use fpga_msa::vitis::ModelKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = BoardConfig::zcu104();

    // Profile the whole public library once (the attacker's offline phase),
    // then reuse the database for every victim.
    let profiles = Profiler::new(board).profile_all();

    println!("== model fingerprinting across the zoo ==\n");
    let mut table = TextTable::new(vec![
        "victim model",
        "identified as",
        "correct",
        "confidence",
        "image recovered",
    ]);

    let mut correct = 0usize;
    let zoo = ModelKind::all();
    for model in zoo {
        let outcome = AttackScenario::new(board, model)
            .with_profiles(profiles.clone())
            .execute()?;
        let identified = outcome.identified_model();
        if outcome.model_identification_correct() {
            correct += 1;
        }
        table.add_row(vec![
            model.to_string(),
            identified
                .map(|m| m.to_string())
                .unwrap_or_else(|| "<none>".to_string()),
            outcome.model_identification_correct().to_string(),
            percent(outcome.attack().identification_confidence()),
            percent(outcome.pixel_recovery_rate()),
        ]);
    }
    println!("{table}");
    println!(
        "identification accuracy: {}/{} ({})",
        correct,
        zoo.len(),
        percent(correct as f64 / zoo.len() as f64)
    );
    Ok(())
}
