//! Minimal offline stand-in for [criterion.rs](https://bheisler.github.io/criterion.rs/book/).
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of the criterion API the workspace's benches use — benchmark
//! groups, `Bencher::iter`, throughput annotation and the `criterion_group!`
//! / `criterion_main!` macros — over plain wall-clock timing. It calibrates
//! an iteration count during warm-up, collects `sample_size` samples, and
//! prints min/mean/max per-iteration time (plus throughput when set).
//!
//! It is intentionally *not* a statistics engine: no outlier analysis, no
//! comparison against saved baselines. Swap the root manifest's
//! `[workspace.dependencies] criterion` entry for the registry version to
//! get the real harness; the bench sources need no changes.

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works like the real crate.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration (reported in MiB/s).
    Bytes(u64),
    /// Bytes processed per iteration (reported in MB/s).
    BytesDecimal(u64),
    /// Elements processed per iteration (reported in Kelem/s).
    Elements(u64),
}

/// Top-level harness state. One per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Parses the CLI configuration this stand-in understands, mirroring the
    /// real API.  Cargo passes `--bench` (and a filter string) to bench
    /// binaries; the only flag acted on is `--quick`, which shrinks the
    /// warm-up/measurement budgets and sample count so a full bench binary
    /// finishes in seconds — the CI smoke configuration.  Everything else is
    /// accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.quick = std::env::args().any(|arg| arg == "--quick");
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        let quick = self.quick;
        let mut group = BenchmarkGroup {
            name,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            sample_size: 10,
            quick,
            throughput: None,
            _criterion: self,
        };
        if quick {
            group.warm_up_time = QUICK_WARM_UP;
            group.measurement_time = QUICK_MEASUREMENT;
            group.sample_size = QUICK_SAMPLE_SIZE;
        }
        group
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(name, f);
        group.finish();
        self
    }

    /// Prints the closing summary. A no-op here; kept for API parity.
    pub fn final_summary(&self) {}
}

/// Quick-mode (`--quick`) budgets: enough to exercise every routine and
/// produce order-of-magnitude numbers, small enough that a whole bench
/// binary smokes through in seconds.
const QUICK_WARM_UP: Duration = Duration::from_millis(50);
const QUICK_MEASUREMENT: Duration = Duration::from_millis(200);
const QUICK_SAMPLE_SIZE: usize = 3;

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    quick: bool,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target total measurement time across all samples.  Under
    /// `--quick` the request is capped at the quick budget, so per-group
    /// tuning in the bench sources cannot re-inflate a smoke run.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.measurement_time = if self.quick {
            dur.min(QUICK_MEASUREMENT)
        } else {
            dur
        };
        self
    }

    /// Sets the warm-up / calibration time (capped under `--quick`).
    pub fn warm_up_time(&mut self, dur: Duration) -> &mut Self {
        self.warm_up_time = if self.quick {
            dur.min(QUICK_WARM_UP)
        } else {
            dur
        };
        self
    }

    /// Sets how many timing samples to collect (capped under `--quick`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = if self.quick {
            n.clamp(1, QUICK_SAMPLE_SIZE)
        } else {
            n.max(1)
        };
        self
    }

    /// Annotates subsequent benchmarks with a per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark: calibrates during warm-up, then times
    /// `sample_size` samples and prints a one-line report.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warm-up doubles the iteration count until one call to the routine
        // is long enough to time reliably (or the warm-up budget runs out).
        let warm_start = Instant::now();
        let mut iters: u64 = 1;
        loop {
            bencher.iters = iters;
            f(&mut bencher);
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
            if bencher.elapsed < Duration::from_millis(1) {
                iters = iters.saturating_mul(2);
            }
        }

        // Size each sample so the whole measurement roughly fits the budget.
        let per_iter_ns = (bencher.elapsed.as_nanos() / u128::from(bencher.iters)).max(1);
        let sample_budget_ns = self.measurement_time.as_nanos() / self.sample_size as u128;
        let sample_iters = (sample_budget_ns / per_iter_ns).clamp(1, u128::from(u64::MAX)) as u64;

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            bencher.iters = sample_iters;
            f(&mut bencher);
            samples_ns.push(bencher.elapsed.as_nanos() as f64 / sample_iters as f64);
        }

        let min = samples_ns.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples_ns.iter().copied().fold(0.0_f64, f64::max);
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;

        let mut line = format!(
            "{}/{name}  time: [{} {} {}]",
            self.name,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
        if let Some(throughput) = self.throughput {
            line.push_str(&format!("  thrpt: {}", fmt_throughput(throughput, mean)));
        }
        println!("{line}");
        self
    }

    /// Ends the group. A no-op here; kept for API parity.
    pub fn finish(self) {}
}

/// Passed to the closure given to [`BenchmarkGroup::bench_function`]; times
/// the routine over `iters` iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_throughput(throughput: Throughput, mean_ns_per_iter: f64) -> String {
    let per_sec = |amount: u64| amount as f64 / (mean_ns_per_iter / 1_000_000_000.0);
    match throughput {
        Throughput::Bytes(bytes) => format!("{:.2} MiB/s", per_sec(bytes) / (1024.0 * 1024.0)),
        Throughput::BytesDecimal(bytes) => format!("{:.2} MB/s", per_sec(bytes) / 1.0e6),
        Throughput::Elements(elems) => format!("{:.2} Kelem/s", per_sec(elems) / 1.0e3),
    }
}

/// Declares a bench group function, mirroring criterion's simple form:
/// `criterion_group!(benches, bench_a, bench_b);`
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine_and_reports() {
        let mut criterion = Criterion::default().configure_from_args();
        let mut group = criterion.benchmark_group("smoke");
        group
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(3)
            .throughput(Throughput::Bytes(64));
        let mut runs = 0u64;
        group.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.finish();
        assert!(runs > 0, "routine should have been exercised");
    }

    #[test]
    fn quick_mode_caps_per_group_tuning() {
        let mut criterion = Criterion { quick: true };
        let mut group = criterion.benchmark_group("quick");
        assert_eq!(group.warm_up_time, QUICK_WARM_UP);
        assert_eq!(group.measurement_time, QUICK_MEASUREMENT);
        assert_eq!(group.sample_size, QUICK_SAMPLE_SIZE);
        group
            .warm_up_time(Duration::from_secs(5))
            .measurement_time(Duration::from_secs(10))
            .sample_size(100);
        assert_eq!(group.warm_up_time, QUICK_WARM_UP);
        assert_eq!(group.measurement_time, QUICK_MEASUREMENT);
        assert_eq!(group.sample_size, QUICK_SAMPLE_SIZE);
        group.finish();

        let mut criterion = Criterion { quick: false };
        let mut group = criterion.benchmark_group("full");
        group.sample_size(100);
        assert_eq!(group.sample_size, 100);
        group.finish();
    }

    #[test]
    fn formatting_covers_magnitudes() {
        assert!(fmt_ns(10.0).ends_with("ns"));
        assert!(fmt_ns(10_000.0).ends_with("us"));
        assert!(fmt_ns(10_000_000.0).ends_with("ms"));
        assert!(fmt_ns(10_000_000_000.0).ends_with(" s"));
    }
}
