//! Minimal offline stand-in for [`serde`](https://serde.rs), just enough for
//! `use serde::{Deserialize, Serialize};` plus the derive attributes to
//! resolve. See `vendor/serde/README.md` for the rationale and for how to
//! swap in the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Stand-in for `serde::Serialize`. Deliberately empty: the no-op derive
/// never implements it, and nothing in the workspace bounds on it.
pub trait Serialize {}

/// Stand-in for `serde::Deserialize`. Deliberately empty, like [`Serialize`].
pub trait Deserialize<'de>: Sized {}
