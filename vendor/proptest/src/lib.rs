//! Minimal offline stand-in for [proptest](https://proptest-rs.github.io/proptest/).
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of the proptest API the workspace's unit tests use: the
//! `proptest! { #[test] fn name(arg in strategy, ...) { .. } }` macro,
//! integer-range and `any::<T>()` strategies, and
//! `proptest::collection::{vec, btree_set}`.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each property runs [`CASES`] cases sampled from a fixed xorshift
//! stream seeded by the test's name, so runs are fully deterministic (a
//! failure always reproduces). Swap the root manifest's
//! `[workspace.dependencies] proptest` entry for the registry version to get
//! real shrinking; the test sources need no changes.

/// Number of sampled cases per property.
pub const CASES: u32 = 64;

/// Deterministic xorshift64* generator used to sample strategy values.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeds the stream from an arbitrary label (the property's name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, never zero.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Self { state: hash | 1 }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling range");
        self.next_u64() % bound
    }
}

/// A value generator. The stand-in samples directly instead of building
/// shrinkable value trees.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Draws one value from `rng`.
    fn sample(&self, rng: &mut Rng) -> Self::Value;

    /// Maps generated values through `f`, mirroring `Strategy::prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut Rng) -> $ty {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32);

/// Strategy for "any value of `T`", mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut Rng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut Rng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut Rng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{Rng, Strategy};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A length range for generated collections.
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            SizeRange(range)
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange(len..len + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.size.0.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size drawn from `size`.
    ///
    /// Like the real proptest, the set may come out smaller than the drawn
    /// size when the element strategy produces duplicates; the attempt count
    /// is bounded so narrow element domains cannot hang the test.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut Rng) -> BTreeSet<S::Value> {
            let target = self.size.0.clone().sample(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(16) + 64 {
                set.insert(self.element.sample(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Rng, Strategy};
}

/// Assertion inside a property; the stand-in panics immediately (there is no
/// shrinking phase to report through).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn roundtrips(raw in any::<u64>(), len in 1usize..64) { .. }
/// }
/// ```
///
/// Each test samples its arguments [`CASES`] times from a stream seeded by
/// the test name.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::Rng::deterministic(stringify!($name));
                for _case in 0..$crate::CASES {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_label() {
        let mut a = Rng::deterministic("label");
        let mut b = Rng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = Rng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = Rng::deterministic("bounds");
        for _ in 0..256 {
            let v = (3u8..7).sample(&mut rng);
            assert!((3..7).contains(&v));
        }
    }

    proptest! {
        #[test]
        fn vec_strategy_respects_length(bytes in crate::collection::vec(any::<u8>(), 2usize..9)) {
            prop_assert!((2..9).contains(&bytes.len()));
        }

        #[test]
        fn btree_set_strategy_yields_unique_ordered(set in crate::collection::btree_set(0u64..1000, 1usize..20)) {
            prop_assert!(!set.is_empty());
            prop_assert!(set.len() < 20);
        }

        #[test]
        fn bool_any_hits_both_values(flips in crate::collection::vec(any::<bool>(), 64usize..65)) {
            prop_assert_eq!(flips.len(), 64);
        }
    }
}
