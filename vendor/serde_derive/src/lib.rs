//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing: the
//! annotated types keep compiling, but do not gain trait implementations.
//! That is sufficient for this workspace, which never serializes through the
//! traits (the derives document intent and keep the sources compatible with
//! the real `serde`). See `vendor/serde/README.md` for how to swap in the
//! real crates.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
